"""Piecewise Aggregate Approximation (PAA).

PAA (Keogh et al.; Yi & Faloutsos) reduces the dimensionality of a time
series by segmenting it into ``w`` equal-sized subsequences and replacing
each subsequence with its mean.  The paper uses PAA both to smooth
intra-signal variation in spectrogram columns (Figure 3) and to reduce
pattern dimensionality by a factor of 10 before classification (Section 3,
``paa`` operator).
"""

from __future__ import annotations

import numpy as np

__all__ = ["paa", "paa_records", "paa_by_factor", "inverse_paa", "paa_matrix"]


def _fractional_weights(n: int, segments: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sparse (segment, sample, weight) triples for fractional PAA.

    Sample ``j`` spans ``[j, j + 1)`` on the input axis; output segment
    ``seg`` spans ``[seg * n/segments, (seg + 1) * n/segments)``.  The triples
    are ordered segment-major with ascending sample index inside each
    segment — the same order the historical double loop accumulated in, which
    keeps `np.add.at` sums bit-identical to it.
    """
    seg_len = n / segments
    segs = np.arange(segments)
    starts = segs * seg_len
    ends = (segs + 1) * seg_len
    firsts = np.floor(starts).astype(np.int64)
    lasts = np.minimum(np.ceil(ends).astype(np.int64), n)
    counts = np.maximum(lasts - firsts, 0)
    seg_idx = np.repeat(segs, counts)
    offsets = np.arange(counts.sum()) - np.repeat(np.cumsum(counts) - counts, counts)
    samples = np.repeat(firsts, counts) + offsets
    weights = np.minimum(ends[seg_idx], samples + 1) - np.maximum(starts[seg_idx], samples)
    keep = weights > 0
    return seg_idx[keep], samples[keep], weights[keep]


def paa(values: np.ndarray, segments: int) -> np.ndarray:
    """Reduce ``values`` to ``segments`` mean values.

    When ``len(values)`` is not a multiple of ``segments`` the fractional
    frame assignment of Keogh et al. is used: each original sample
    contributes to the segment(s) it overlaps, weighted by the overlap.  This
    keeps every segment the same (fractional) length, so the PAA of a
    constant signal is constant and the overall mean is preserved.

    Parameters
    ----------
    values:
        1-D array-like of samples, length ``n``.
    segments:
        Number of output segments ``w``; must satisfy ``1 <= w <= n``.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"paa expects a 1-D sequence, got shape {arr.shape}")
    n = arr.size
    if segments < 1:
        raise ValueError(f"segments must be >= 1, got {segments}")
    if n == 0:
        raise ValueError("cannot compute PAA of an empty sequence")
    if segments > n:
        raise ValueError(f"segments ({segments}) cannot exceed sequence length ({n})")
    if segments == n:
        return arr.copy()
    if n % segments == 0:
        return arr.reshape(segments, n // segments).mean(axis=1)
    # Fractional frame assignment: sample j spans [j, j+1) on a length-n axis
    # rescaled so each output segment spans exactly n/segments input units.
    # `np.add.at` applies the weighted contributions sequentially in triple
    # order, so each segment's sum accumulates in the same order as the
    # historical per-segment loop — the result is bit-identical.
    seg_idx, samples, weights = _fractional_weights(n, segments)
    output = np.zeros(segments, dtype=float)
    np.add.at(output, seg_idx, arr[samples] * weights)
    return output / (n / segments)


def paa_records(records: np.ndarray, segments: int) -> np.ndarray:
    """Apply PAA to every row of a 2-D block in one vectorised call.

    ``records`` is ``(n_records, n)``; the result is ``(n_records,
    segments)`` with row ``i`` bit-identical to ``paa(records[i],
    segments)``.  Used by the batched feature-extraction and spectrogram
    kernels so a whole block of records is reduced without a per-row Python
    loop.
    """
    # Contiguity matters for bit-identity, not just speed: numpy only applies
    # pairwise summation to unit-stride reductions, so reducing a strided
    # view (e.g. a transposed spectrogram or a band cut-out) would round
    # differently than the 1-D path, which always copies via `reshape`.
    arr = np.ascontiguousarray(records, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"paa_records expects a 2-D block, got shape {arr.shape}")
    n = arr.shape[1]
    if segments < 1:
        raise ValueError(f"segments must be >= 1, got {segments}")
    if n == 0:
        raise ValueError("cannot compute PAA of empty records")
    if segments > n:
        raise ValueError(f"segments ({segments}) cannot exceed record length ({n})")
    if segments == n:
        return arr.copy()
    if n % segments == 0:
        return arr.reshape(arr.shape[0], segments, n // segments).mean(axis=2)
    seg_idx, samples, weights = _fractional_weights(n, segments)
    output = np.zeros((arr.shape[0], segments), dtype=float)
    # Sequential per-column accumulation in triple order: each row's segment
    # sums build up in exactly the order the 1-D kernel adds them.
    np.add.at(output, (slice(None), seg_idx), arr[:, samples] * weights)
    return output / (n / segments)


def paa_by_factor(values: np.ndarray, factor: int) -> np.ndarray:
    """Reduce ``values`` by an integer ``factor`` (the paper reduces by 10).

    The number of output segments is ``ceil(len(values) / factor)`` so that no
    input sample is dropped.  For inputs shorter than ``factor`` the output is
    the single overall mean.
    """
    arr = np.asarray(values, dtype=float)
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    if arr.size == 0:
        raise ValueError("cannot reduce an empty sequence")
    segments = max(1, int(np.ceil(arr.size / factor)))
    return paa(arr, segments)


def inverse_paa(reduced: np.ndarray, length: int) -> np.ndarray:
    """Expand a PAA representation back to ``length`` samples.

    Each segment mean is repeated over the samples it covered.  Used for
    visual comparison of PAA-smoothed spectrograms against the originals
    (Figure 3) and in round-trip tests.
    """
    arr = np.asarray(reduced, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"inverse_paa expects a 1-D sequence, got shape {arr.shape}")
    if length < arr.size:
        raise ValueError(
            f"target length ({length}) must be >= number of segments ({arr.size})"
        )
    if arr.size == 0:
        return np.zeros(length)
    indices = np.minimum((np.arange(length) * arr.size) // length, arr.size - 1)
    return arr[indices]


def paa_matrix(matrix: np.ndarray, segments: int, axis: int = 0) -> np.ndarray:
    """Apply PAA independently along one axis of a 2-D array.

    The paper constructs the PAA spectrogram of Figure 3 by applying PAA to
    the frequency data of each spectrogram column; that corresponds to
    ``axis=0`` on a (frequency x time) matrix.
    """
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"paa_matrix expects a 2-D array, got shape {arr.shape}")
    if axis not in (0, 1):
        raise ValueError(f"axis must be 0 or 1, got {axis}")
    if axis == 1:
        return paa_matrix(arr.T, segments, axis=0).T
    # One vectorised call over all columns instead of a per-column list;
    # each column is bit-identical to `paa(arr[:, col], segments)`.
    return paa_records(arr.T, segments).T
