"""Piecewise Aggregate Approximation (PAA).

PAA (Keogh et al.; Yi & Faloutsos) reduces the dimensionality of a time
series by segmenting it into ``w`` equal-sized subsequences and replacing
each subsequence with its mean.  The paper uses PAA both to smooth
intra-signal variation in spectrogram columns (Figure 3) and to reduce
pattern dimensionality by a factor of 10 before classification (Section 3,
``paa`` operator).
"""

from __future__ import annotations

import numpy as np

__all__ = ["paa", "paa_by_factor", "inverse_paa", "paa_matrix"]


def paa(values: np.ndarray, segments: int) -> np.ndarray:
    """Reduce ``values`` to ``segments`` mean values.

    When ``len(values)`` is not a multiple of ``segments`` the fractional
    frame assignment of Keogh et al. is used: each original sample
    contributes to the segment(s) it overlaps, weighted by the overlap.  This
    keeps every segment the same (fractional) length, so the PAA of a
    constant signal is constant and the overall mean is preserved.

    Parameters
    ----------
    values:
        1-D array-like of samples, length ``n``.
    segments:
        Number of output segments ``w``; must satisfy ``1 <= w <= n``.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"paa expects a 1-D sequence, got shape {arr.shape}")
    n = arr.size
    if segments < 1:
        raise ValueError(f"segments must be >= 1, got {segments}")
    if n == 0:
        raise ValueError("cannot compute PAA of an empty sequence")
    if segments > n:
        raise ValueError(f"segments ({segments}) cannot exceed sequence length ({n})")
    if segments == n:
        return arr.copy()
    if n % segments == 0:
        return arr.reshape(segments, n // segments).mean(axis=1)
    # Fractional frame assignment: sample j spans [j, j+1) on a length-n axis
    # rescaled so each output segment spans exactly n/segments input units.
    output = np.zeros(segments, dtype=float)
    seg_len = n / segments
    for seg in range(segments):
        start = seg * seg_len
        end = (seg + 1) * seg_len
        first = int(np.floor(start))
        last = int(np.ceil(end))
        total = 0.0
        for j in range(first, min(last, n)):
            overlap = min(end, j + 1) - max(start, j)
            if overlap > 0:
                total += arr[j] * overlap
        output[seg] = total / seg_len
    return output


def paa_by_factor(values: np.ndarray, factor: int) -> np.ndarray:
    """Reduce ``values`` by an integer ``factor`` (the paper reduces by 10).

    The number of output segments is ``ceil(len(values) / factor)`` so that no
    input sample is dropped.  For inputs shorter than ``factor`` the output is
    the single overall mean.
    """
    arr = np.asarray(values, dtype=float)
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    if arr.size == 0:
        raise ValueError("cannot reduce an empty sequence")
    segments = max(1, int(np.ceil(arr.size / factor)))
    return paa(arr, segments)


def inverse_paa(reduced: np.ndarray, length: int) -> np.ndarray:
    """Expand a PAA representation back to ``length`` samples.

    Each segment mean is repeated over the samples it covered.  Used for
    visual comparison of PAA-smoothed spectrograms against the originals
    (Figure 3) and in round-trip tests.
    """
    arr = np.asarray(reduced, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"inverse_paa expects a 1-D sequence, got shape {arr.shape}")
    if length < arr.size:
        raise ValueError(
            f"target length ({length}) must be >= number of segments ({arr.size})"
        )
    if arr.size == 0:
        return np.zeros(length)
    indices = np.minimum((np.arange(length) * arr.size) // length, arr.size - 1)
    return arr[indices]


def paa_matrix(matrix: np.ndarray, segments: int, axis: int = 0) -> np.ndarray:
    """Apply PAA independently along one axis of a 2-D array.

    The paper constructs the PAA spectrogram of Figure 3 by applying PAA to
    the frequency data of each spectrogram column; that corresponds to
    ``axis=0`` on a (frequency x time) matrix.
    """
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"paa_matrix expects a 2-D array, got shape {arr.shape}")
    if axis not in (0, 1):
        raise ValueError(f"axis must be 0 or 1, got {axis}")
    if axis == 1:
        return paa_matrix(arr.T, segments, axis=0).T
    columns = [paa(arr[:, col], segments) for col in range(arr.shape[1])]
    return np.stack(columns, axis=1)
