"""Z-normalisation of time series.

The paper (Section 2) Z-normalises a sequence ``Q`` before PAA/SAX
conversion::

    q_i = (q_i - mu) / sigma

where ``mu`` is the vector mean of the original signal and ``sigma`` the
corresponding standard deviation.  Z-normalisation equalises acoustic
patterns that differ only in signal strength.
"""

from __future__ import annotations

import numpy as np

__all__ = ["znormalize", "znormalize_safe", "running_mean_std"]

#: Sequences whose standard deviation falls below this value are treated as
#: constant; normalising them would amplify numerical noise into spurious
#: structure, so they are mapped to all-zeros instead.
DEFAULT_EPSILON = 1e-12


def znormalize(values: np.ndarray, epsilon: float = DEFAULT_EPSILON) -> np.ndarray:
    """Return the Z-normalised copy of ``values``.

    Parameters
    ----------
    values:
        One-dimensional array-like of samples.
    epsilon:
        Standard deviations smaller than this are treated as zero, and the
        result is an all-zero vector of the same length (a constant signal
        carries no shape information).

    Returns
    -------
    numpy.ndarray
        Array of the same length with zero mean and unit variance (unless the
        input was constant).
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"znormalize expects a 1-D sequence, got shape {arr.shape}")
    if arr.size == 0:
        return arr.copy()
    mu = arr.mean()
    sigma = arr.std()
    # Treat the signal as constant when its spread is negligible either in
    # absolute terms or relative to its magnitude; dividing by such a sigma
    # only amplifies floating-point cancellation noise into fake structure.
    if sigma < epsilon or sigma < 1e-9 * np.max(np.abs(arr)):
        return np.zeros_like(arr)
    return (arr - mu) / sigma


def znormalize_safe(values: np.ndarray, epsilon: float = DEFAULT_EPSILON) -> np.ndarray:
    """Z-normalise ``values``, never raising for degenerate input.

    Unlike :func:`znormalize`, empty and multi-dimensional inputs are
    flattened / passed through rather than rejected.  Intended for streaming
    operators that must not abort on odd record boundaries.
    """
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        return arr
    return znormalize(arr, epsilon=epsilon)


def running_mean_std(
    previous_count: int,
    previous_mean: float,
    previous_m2: float,
    new_value: float,
) -> tuple[int, float, float]:
    """One step of Welford's online mean / variance update.

    Used by the adaptive trigger operator to estimate the baseline anomaly
    score without storing history.

    Returns
    -------
    tuple
        ``(count, mean, m2)`` after incorporating ``new_value``.  The running
        variance is ``m2 / count`` (population) once ``count`` > 0.
    """
    count = previous_count + 1
    delta = new_value - previous_mean
    mean = previous_mean + delta / count
    m2 = previous_m2 + delta * (new_value - mean)
    return count, mean, m2
