"""Distance measures used throughout the reproduction.

Euclidean distance is the workhorse (MESO spheres, bitmap anomaly scores,
nearest-neighbour baselines); the module also provides squared Euclidean,
Manhattan and normalised-Euclidean variants plus batched helpers that keep
classifier inner loops vectorised.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "euclidean",
    "squared_euclidean",
    "manhattan",
    "normalized_euclidean",
    "pairwise_euclidean",
    "distances_to_point",
]


def _as_vectors(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    va = np.asarray(a, dtype=float).ravel()
    vb = np.asarray(b, dtype=float).ravel()
    if va.shape != vb.shape:
        raise ValueError(f"vectors must have equal length, got {va.size} and {vb.size}")
    return va, vb


def euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean (L2) distance between two vectors."""
    va, vb = _as_vectors(a, b)
    return float(np.sqrt(np.sum((va - vb) ** 2)))


def squared_euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Squared Euclidean distance (cheaper when only ordering matters)."""
    va, vb = _as_vectors(a, b)
    return float(np.sum((va - vb) ** 2))


def manhattan(a: np.ndarray, b: np.ndarray) -> float:
    """Manhattan (L1) distance between two vectors."""
    va, vb = _as_vectors(a, b)
    return float(np.sum(np.abs(va - vb)))


def normalized_euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance divided by the square root of the dimensionality.

    Makes distances comparable between the 1050-feature raw patterns and the
    105-feature PAA patterns used in the paper's experiments.
    """
    va, vb = _as_vectors(a, b)
    if va.size == 0:
        return 0.0
    return float(np.sqrt(np.sum((va - vb) ** 2) / va.size))


def distances_to_point(points: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Euclidean distance from every row of ``points`` to ``query``.

    ``points`` has shape ``(n, d)``; the result has shape ``(n,)``.
    """
    matrix = np.atleast_2d(np.asarray(points, dtype=float))
    vector = np.asarray(query, dtype=float).ravel()
    if matrix.shape[1] != vector.size:
        raise ValueError(
            f"dimension mismatch: points have {matrix.shape[1]} features, query has {vector.size}"
        )
    diff = matrix - vector[None, :]
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def pairwise_euclidean(points_a: np.ndarray, points_b: np.ndarray | None = None) -> np.ndarray:
    """Dense pairwise Euclidean distance matrix.

    ``points_a`` has shape ``(n, d)``; ``points_b`` defaults to ``points_a``.
    Used by the motif / discord baselines and by tests that cross-check the
    streaming implementations against brute force.
    """
    a = np.atleast_2d(np.asarray(points_a, dtype=float))
    b = a if points_b is None else np.atleast_2d(np.asarray(points_b, dtype=float))
    if a.shape[1] != b.shape[1]:
        raise ValueError(
            f"dimension mismatch: {a.shape[1]} features vs {b.shape[1]} features"
        )
    aa = np.sum(a**2, axis=1)[:, None]
    bb = np.sum(b**2, axis=1)[None, :]
    squared = aa + bb - 2.0 * (a @ b.T)
    np.maximum(squared, 0.0, out=squared)
    return np.sqrt(squared)
