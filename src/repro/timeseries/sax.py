"""Symbolic Aggregate approXimation (SAX).

SAX (Lin et al.) converts a Z-normalised, PAA-reduced sequence into a string
of symbols drawn from a fixed alphabet, choosing breakpoints so that — under
the assumption that time-series subsequences are Gaussian — every symbol
appears with equal probability.  The paper uses an alphabet of size 8 for
anomaly detection and shows an alphabet of 5 in its Figure 4 example.

Symbols are represented as integers ``0 .. alphabet-1`` (the paper also uses
integers), with 0 denoting the lowest-value band.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from .normalize import znormalize
from .paa import paa

__all__ = [
    "gaussian_breakpoints",
    "symbolize",
    "sax_transform",
    "sax_distance",
    "SaxEncoder",
]

_BREAKPOINT_CACHE: dict[int, np.ndarray] = {}


def gaussian_breakpoints(alphabet: int) -> np.ndarray:
    """Return the ``alphabet - 1`` breakpoints that equiprobably partition N(0,1).

    For alphabet size ``a`` the breakpoints are the quantiles
    ``Phi^-1(1/a), Phi^-1(2/a), ..., Phi^-1((a-1)/a)`` of the standard normal
    distribution, so that each of the ``a`` bands has probability ``1/a``.
    """
    if alphabet < 2:
        raise ValueError(f"alphabet size must be >= 2, got {alphabet}")
    cached = _BREAKPOINT_CACHE.get(alphabet)
    if cached is None:
        quantiles = np.arange(1, alphabet) / alphabet
        cached = norm.ppf(quantiles)
        _BREAKPOINT_CACHE[alphabet] = cached
    return cached.copy()


def symbolize(values: np.ndarray, alphabet: int) -> np.ndarray:
    """Map already-normalised values to integer SAX symbols.

    Each value is assigned the index of the Gaussian band it falls into:
    ``0`` for values below the first breakpoint up to ``alphabet - 1`` for
    values above the last.
    """
    arr = np.asarray(values, dtype=float)
    breakpoints = gaussian_breakpoints(alphabet)
    return np.searchsorted(breakpoints, arr, side="left").astype(np.int64)


def sax_transform(
    values: np.ndarray,
    segments: int | None = None,
    alphabet: int = 8,
    normalize: bool = True,
) -> np.ndarray:
    """Full SAX transform: Z-normalise, PAA-reduce, then symbolise.

    Parameters
    ----------
    values:
        Raw 1-D sequence.
    segments:
        Number of PAA segments; ``None`` keeps the original length (no PAA
        reduction), which is how the anomaly-detection path uses SAX.
    alphabet:
        Alphabet size (paper: 8).
    normalize:
        Set to False when the caller has already Z-normalised the sequence.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return np.zeros(0, dtype=np.int64)
    if normalize:
        arr = znormalize(arr)
    if segments is not None and segments != arr.size:
        arr = paa(arr, segments)
    return symbolize(arr, alphabet)


def sax_distance(
    word_a: np.ndarray, word_b: np.ndarray, alphabet: int, original_length: int
) -> float:
    """MINDIST between two SAX words of equal length (Lin et al., 2003).

    The symbol-pair distance is zero for adjacent symbols and the breakpoint
    gap otherwise; the total is scaled by ``sqrt(n / w)`` so that it lower
    bounds the Euclidean distance between the original sequences.
    """
    a = np.asarray(word_a, dtype=np.int64)
    b = np.asarray(word_b, dtype=np.int64)
    if a.shape != b.shape:
        raise ValueError(f"SAX words must have equal length, got {a.shape} and {b.shape}")
    if a.size == 0:
        return 0.0
    breakpoints = gaussian_breakpoints(alphabet)
    hi = np.maximum(a, b)
    lo = np.minimum(a, b)
    adjacent = (hi - lo) <= 1
    # dist(r, c) = beta_(max-1) - beta_min  when |r - c| > 1, else 0
    gaps = np.where(adjacent, 0.0, breakpoints[np.maximum(hi - 1, 0)] - breakpoints[np.minimum(lo, alphabet - 2)])
    return float(np.sqrt(original_length / a.size) * np.sqrt(np.sum(gaps**2)))


@dataclass
class SaxEncoder:
    """Reusable SAX encoder with fixed parameters.

    Convenience wrapper bundling the alphabet size and optional PAA segment
    count so streaming operators can symbolise many windows with one object.
    """

    alphabet: int = 8
    segments: int | None = None
    normalize: bool = True

    def __post_init__(self) -> None:
        if self.alphabet < 2:
            raise ValueError(f"alphabet size must be >= 2, got {self.alphabet}")
        if self.segments is not None and self.segments < 1:
            raise ValueError(f"segments must be >= 1, got {self.segments}")

    def encode(self, values: np.ndarray) -> np.ndarray:
        """Symbolise ``values`` with this encoder's parameters."""
        return sax_transform(
            values,
            segments=self.segments,
            alphabet=self.alphabet,
            normalize=self.normalize,
        )

    def encode_to_string(self, values: np.ndarray) -> str:
        """Symbolise and render as a letter string (``a`` = lowest band)."""
        symbols = self.encode(values)
        if self.alphabet > 26:
            raise ValueError("letter rendering supports alphabets up to 26 symbols")
        return "".join(chr(ord("a") + int(s)) for s in symbols)
