"""Time-series representations: Z-normalisation, PAA, SAX, bitmaps, baselines."""

from .bitmap import BitmapAccumulator, bitmap_distance, sax_bitmap, windowed_code_counts
from .discord import Discord, brute_force_discord, find_discord
from .distance import (
    distances_to_point,
    euclidean,
    manhattan,
    normalized_euclidean,
    pairwise_euclidean,
    squared_euclidean,
)
from .motif import Motif, find_motifs
from .normalize import running_mean_std, znormalize, znormalize_safe
from .paa import inverse_paa, paa, paa_by_factor, paa_matrix, paa_records
from .sax import (
    SaxEncoder,
    gaussian_breakpoints,
    sax_distance,
    sax_transform,
    symbolize,
)
from .windows import (
    MovingAverage,
    RunningStats,
    SlidingWindow,
    moving_average,
    sliding_windows,
)

__all__ = [
    "BitmapAccumulator",
    "Discord",
    "Motif",
    "MovingAverage",
    "RunningStats",
    "SaxEncoder",
    "SlidingWindow",
    "bitmap_distance",
    "brute_force_discord",
    "distances_to_point",
    "euclidean",
    "find_discord",
    "find_motifs",
    "gaussian_breakpoints",
    "inverse_paa",
    "manhattan",
    "moving_average",
    "normalized_euclidean",
    "paa",
    "paa_by_factor",
    "paa_matrix",
    "paa_records",
    "pairwise_euclidean",
    "running_mean_std",
    "sax_bitmap",
    "sax_distance",
    "sax_transform",
    "sliding_windows",
    "squared_euclidean",
    "symbolize",
    "windowed_code_counts",
    "znormalize",
    "znormalize_safe",
]
