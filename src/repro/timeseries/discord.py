"""Discord discovery baseline (HOT SAX).

A *discord* (Keogh, Lin & Fu) is the fixed-length subsequence that is least
similar to every other subsequence of a finite time series.  The paper notes
that discord discovery requires a finite series, which is exactly the
limitation ensembles remove by scoring a bounded window online.  This module
implements the HOT SAX heuristic search so the benchmarks can contrast the
two approaches on the same clips.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from .distance import euclidean
from .normalize import znormalize
from .sax import sax_transform

__all__ = ["Discord", "find_discord", "brute_force_discord"]


@dataclass(frozen=True)
class Discord:
    """The discovered discord: its start index and nearest-neighbour distance."""

    start: int
    distance: float
    width: int


def _normalized_windows(arr: np.ndarray, width: int, step: int) -> dict[int, np.ndarray]:
    windows: dict[int, np.ndarray] = {}
    for start in range(0, arr.size - width + 1, step):
        windows[start] = znormalize(arr[start : start + width])
    return windows


def brute_force_discord(values: np.ndarray, width: int, step: int = 1) -> Discord | None:
    """O(n^2) discord search used as ground truth in tests."""
    arr = np.asarray(values, dtype=float)
    if arr.size < 2 * width:
        return None
    windows = _normalized_windows(arr, width, step)
    best_start, best_distance = -1, -1.0
    for start, window in windows.items():
        nearest = np.inf
        for other, candidate in windows.items():
            if abs(other - start) < width:
                continue  # exclude trivial (self-overlapping) matches
            nearest = min(nearest, euclidean(window, candidate))
        if np.isfinite(nearest) and nearest > best_distance:
            best_start, best_distance = start, nearest
    if best_start < 0:
        return None
    return Discord(start=best_start, distance=float(best_distance), width=width)


def find_discord(
    values: np.ndarray,
    width: int,
    segments: int = 8,
    alphabet: int = 4,
    step: int = 1,
) -> Discord | None:
    """HOT SAX discord search.

    Candidate outer-loop subsequences are visited rarest-SAX-word first and
    inner-loop comparisons visit same-word subsequences first, which lets the
    early-abandoning threshold prune most of the quadratic work while
    returning the same discord as :func:`brute_force_discord`.
    """
    arr = np.asarray(values, dtype=float)
    if width < 2:
        raise ValueError(f"width must be >= 2, got {width}")
    if arr.size < 2 * width:
        return None
    segments = min(segments, width)

    windows = _normalized_windows(arr, width, step)
    starts = list(windows)
    words: dict[int, tuple[int, ...]] = {}
    buckets: dict[tuple[int, ...], list[int]] = defaultdict(list)
    for start in starts:
        word = tuple(
            int(s)
            for s in sax_transform(arr[start : start + width], segments=segments, alphabet=alphabet)
        )
        words[start] = word
        buckets[word].append(start)

    # Outer loop: rarest words first (most likely to be discords).
    outer_order = sorted(starts, key=lambda s: (len(buckets[words[s]]), s))

    best_start, best_distance = -1, -1.0
    for start in outer_order:
        window = windows[start]
        nearest = np.inf
        same_word = [s for s in buckets[words[start]] if s != start]
        other = [s for s in starts if s != start and s not in set(same_word)]
        pruned = False
        for candidate in same_word + other:
            if abs(candidate - start) < width:
                continue
            distance = euclidean(window, windows[candidate])
            if distance < nearest:
                nearest = distance
            if nearest < best_distance:
                pruned = True
                break  # cannot beat the best discord found so far
        if pruned or not np.isfinite(nearest):
            continue
        if nearest > best_distance:
            best_start, best_distance = start, nearest
    if best_start < 0:
        return None
    return Discord(start=best_start, distance=float(best_distance), width=width)
