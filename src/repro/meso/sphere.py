"""Sensitivity spheres.

MESO's novel feature (Kasten & McKinley, TKDE 2007) is its use of small
agglomerative clusters, called *sensitivity spheres*, that aggregate similar
training patterns.  A sphere has a centre (the mean of its member patterns),
a sensitivity radius delta shared across the memory, and a label histogram
recording which classes its members came from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

__all__ = ["SensitivitySphere"]


@dataclass
class SensitivitySphere:
    """One sensitivity sphere: centre, member patterns and their labels."""

    center: np.ndarray
    #: Member patterns (kept so spheres can be merged or inspected); storing
    #: them mirrors MESO, which retains training patterns inside spheres.
    members: list[np.ndarray] = field(default_factory=list)
    #: Per-member labels, parallel to ``members``.
    labels: list[Hashable] = field(default_factory=list)
    #: Sum of member patterns, used to keep the centre an exact mean.
    _sum: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.center = np.asarray(self.center, dtype=float).ravel()
        self._sum = np.zeros_like(self.center)
        if self.members or self.labels:
            raise ValueError("construct spheres empty and add members via add()")

    @property
    def dimension(self) -> int:
        return self.center.size

    @property
    def count(self) -> int:
        """Number of member patterns."""
        return len(self.members)

    @property
    def label_counts(self) -> dict[Hashable, int]:
        """Label -> member count histogram."""
        counts: dict[Hashable, int] = {}
        for label in self.labels:
            counts[label] = counts.get(label, 0) + 1
        return counts

    def add(self, pattern: np.ndarray, label: Hashable) -> None:
        """Add a training pattern; the centre becomes the mean of all members."""
        vector = np.asarray(pattern, dtype=float).ravel()
        if vector.size != self.center.size:
            raise ValueError(
                f"pattern has {vector.size} features but sphere expects {self.center.size}"
            )
        self.members.append(vector)
        self.labels.append(label)
        self._sum += vector
        self.center = self._sum / self.count

    def majority_label(self) -> Hashable:
        """The label held by the most member patterns (ties broken by repr order)."""
        if not self.labels:
            raise ValueError("sphere has no members")
        return max(self.label_counts.items(), key=lambda item: (item[1], str(item[0])))[0]

    def label_distribution(self) -> dict[Hashable, float]:
        """Normalised label histogram of the member patterns."""
        if not self.labels:
            return {}
        total = self.count
        return {label: count / total for label, count in self.label_counts.items()}

    def radius(self) -> float:
        """Largest distance from the centre to any member (0 for singletons)."""
        if not self.members:
            return 0.0
        diffs = np.stack(self.members) - self.center[None, :]
        return float(np.sqrt(np.max(np.einsum("ij,ij->i", diffs, diffs))))

    def merge(self, other: "SensitivitySphere") -> None:
        """Absorb another sphere's members (used when compressing the memory)."""
        if other.dimension != self.dimension:
            raise ValueError("cannot merge spheres of different dimensionality")
        for pattern, label in zip(other.members, other.labels):
            self.add(pattern, label)
