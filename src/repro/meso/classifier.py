"""The MESO classifier.

MESO (Kasten & McKinley, IEEE TKDE 2007) is a perceptual memory system
supporting online, incremental learning.  It is based on the leader-follower
algorithm: each incoming training pattern either joins the nearest
sensitivity sphere (if it lies within the sphere sensitivity ``delta``) or
founds a new sphere.  ``delta`` adapts as data arrives so spheres remain
small agglomerative clusters.  Trained memory is queried with an unlabelled
pattern; MESO returns the label(s) associated with the most similar sphere.

This reimplementation keeps the behaviour the DEPSA paper relies on:

* online, incremental training (``partial_fit``) and batch training (``fit``),
* labelled nearest-sphere queries (``predict`` / ``predict_proba``),
* a hierarchical sphere tree to accelerate queries on large memories,
* training / testing time accounting, reported in Table 2 of the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from .sphere import SensitivitySphere
from .tree import SphereTree

__all__ = ["MesoClassifier", "MesoConfig", "TrainingStats"]


@dataclass(frozen=True)
class MesoConfig:
    """Tunable parameters of the MESO memory."""

    #: Initial sphere sensitivity; 0 means "learn from the data" (the first
    #: inter-pattern distance seen initialises delta).
    initial_delta: float = 0.0
    #: Fraction of the first nearest-sphere distance used to initialise delta
    #: when ``initial_delta`` is 0.
    init_fraction: float = 0.3
    #: Rate at which delta grows toward a new pattern's nearest-sphere
    #: distance when that pattern founds a new sphere.
    grow_rate: float = 0.05
    #: Multiplicative shrink applied to delta when a pattern joins an
    #: existing sphere (keeps spheres small as dense regions fill in).
    shrink_rate: float = 0.10
    #: Number of spheres above which queries go through the sphere tree.
    #: Training keeps the memory changing constantly, so the vectorised
    #: linear scan is usually faster; the tree pays off for query-heavy use
    #: of a static memory (set a lower threshold for that workload).
    tree_threshold: int = 100_000
    #: Leaf size of the sphere tree.
    tree_leaf_size: int = 8
    #: Use exact (backtracking) tree search; greedy search is faster but may
    #: return a slightly farther sphere.
    exact_search: bool = True

    def __post_init__(self) -> None:
        if self.initial_delta < 0:
            raise ValueError(f"initial_delta must be >= 0, got {self.initial_delta}")
        if not (0.0 < self.init_fraction <= 1.0):
            raise ValueError(f"init_fraction must be in (0, 1], got {self.init_fraction}")
        if not (0.0 <= self.grow_rate <= 1.0):
            raise ValueError(f"grow_rate must be in [0, 1], got {self.grow_rate}")
        if not (0.0 <= self.shrink_rate < 1.0):
            raise ValueError(f"shrink_rate must be in [0, 1), got {self.shrink_rate}")
        if self.tree_threshold < 1:
            raise ValueError(f"tree_threshold must be >= 1, got {self.tree_threshold}")


@dataclass
class TrainingStats:
    """Cumulative training / testing statistics (Table 2 reports these times)."""

    patterns_trained: int = 0
    patterns_tested: int = 0
    training_seconds: float = 0.0
    testing_seconds: float = 0.0


class MesoClassifier:
    """Online, incremental classifier built on sensitivity spheres."""

    def __init__(self, config: MesoConfig | None = None) -> None:
        self.config = config or MesoConfig()
        self.spheres: list[SensitivitySphere] = []
        self.delta: float = self.config.initial_delta
        self.stats = TrainingStats()
        self._tree: SphereTree | None = None
        self._tree_size: int = 0
        # Pre-allocated (capacity, d) matrix of sphere centres; row i mirrors
        # self.spheres[i].center so nearest-sphere search is one matrix op.
        self._centers: np.ndarray | None = None
        self._dimension: int | None = None

    # -- bookkeeping -------------------------------------------------------

    @property
    def sphere_count(self) -> int:
        """Number of sensitivity spheres currently in the memory."""
        return len(self.spheres)

    @property
    def pattern_count(self) -> int:
        """Total number of training patterns stored across all spheres."""
        return sum(sphere.count for sphere in self.spheres)

    def labels(self) -> set[Hashable]:
        """The set of labels seen during training."""
        seen: set[Hashable] = set()
        for sphere in self.spheres:
            seen.update(sphere.label_counts)
        return seen

    def _check_dimension(self, vector: np.ndarray) -> np.ndarray:
        arr = np.asarray(vector, dtype=float).ravel()
        if arr.size == 0:
            raise ValueError("patterns must have at least one feature")
        if self._dimension is None:
            self._dimension = arr.size
        elif arr.size != self._dimension:
            raise ValueError(
                f"pattern has {arr.size} features but the memory was trained with {self._dimension}"
            )
        return arr

    def _ensure_capacity(self, extra: int = 1) -> None:
        """Grow the centre matrix geometrically so appends are amortised O(d)."""
        needed = len(self.spheres) + extra
        dimension = self._dimension or 1
        if self._centers is None:
            capacity = max(64, needed)
            self._centers = np.zeros((capacity, dimension))
            for i, sphere in enumerate(self.spheres):
                self._centers[i] = sphere.center
        elif self._centers.shape[0] < needed:
            capacity = max(needed, self._centers.shape[0] * 2)
            grown = np.zeros((capacity, self._centers.shape[1]))
            grown[: len(self.spheres)] = self._centers[: len(self.spheres)]
            self._centers = grown

    def _set_center(self, index: int, center: np.ndarray) -> None:
        self._ensure_capacity()
        self._centers[index] = center

    def _center_matrix(self) -> np.ndarray:
        self._ensure_capacity(extra=0)
        return self._centers[: len(self.spheres)]

    def _nearest_sphere(self, vector: np.ndarray) -> tuple[int, float]:
        """Index and distance of the sphere whose centre is nearest to ``vector``."""
        if not self.spheres:
            raise ValueError("memory is empty")
        if len(self.spheres) >= self.config.tree_threshold:
            if self._tree is None or self._tree_size != len(self.spheres):
                self._tree = SphereTree(list(self.spheres), leaf_size=self.config.tree_leaf_size)
                self._tree_size = len(self.spheres)
            return self._tree.nearest(vector, exact=self.config.exact_search)
        centers = self._center_matrix()
        diff = centers - vector[None, :]
        dists = np.einsum("ij,ij->i", diff, diff)
        index = int(np.argmin(dists))
        return index, float(np.sqrt(dists[index]))

    #: Upper bound on queries per block of the vectorised batch path.
    _BATCH_BLOCK = 256
    #: Element budget for one (block, spheres, dimension) difference
    #: tensor (~128 MB of float64); the block shrinks as the memory grows
    #: so large sub-tree-threshold memories cannot blow up RAM.  Blocking
    #: never changes per-row arithmetic.
    _BATCH_ELEMENT_BUDGET = 16_777_216

    def _nearest_sphere_indices(self, matrix: np.ndarray) -> np.ndarray:
        """Nearest-sphere index for every row of ``matrix``, vectorised.

        Row ``b`` gets exactly the result :meth:`_nearest_sphere` would
        return for ``matrix[b]``: the subtraction, the squared-distance
        reduction (a plain C summation over the contiguous feature axis in
        both shapes) and the first-minimum ``argmin`` tie-break are
        identical operations, so the batch path is bit-equal to the scalar
        path — the equivalence tests in ``tests/test_meso.py`` enforce it.
        """
        if not self.spheres:
            raise ValueError("memory is empty")
        if len(self.spheres) >= self.config.tree_threshold:
            # Large memories query through the sphere tree; reuse the
            # scalar path per row so results stay identical.
            return np.array(
                [self._nearest_sphere(row)[0] for row in matrix], dtype=np.intp
            )
        centers = self._center_matrix()
        rows = max(1, min(self._BATCH_BLOCK, self._BATCH_ELEMENT_BUDGET // max(1, centers.size)))
        indices = np.empty(matrix.shape[0], dtype=np.intp)
        for start in range(0, matrix.shape[0], rows):
            block = matrix[start : start + rows]
            diff = centers[None, :, :] - block[:, None, :]
            dists = np.einsum("bij,bij->bi", diff, diff)
            indices[start : start + rows] = np.argmin(dists, axis=1)
        return indices

    def _check_matrix(self, patterns) -> np.ndarray:
        """Validate a batch of query patterns into a (n, dimension) matrix."""
        matrix = np.atleast_2d(np.asarray(patterns, dtype=float))
        if matrix.ndim != 2:
            raise ValueError(
                f"batch queries need a (n, features) matrix, got shape {matrix.shape}"
            )
        if matrix.shape[1] == 0:
            raise ValueError("patterns must have at least one feature")
        if self._dimension is not None and matrix.shape[1] != self._dimension:
            raise ValueError(
                f"pattern has {matrix.shape[1]} features but the memory was "
                f"trained with {self._dimension}"
            )
        return matrix

    # -- training ----------------------------------------------------------

    def partial_fit(self, pattern: np.ndarray, label: Hashable) -> int:
        """Incrementally train on one labelled pattern.

        Returns the index of the sphere the pattern was placed in.
        """
        start = time.perf_counter()
        vector = self._check_dimension(pattern)
        if not self.spheres:
            sphere = SensitivitySphere(center=vector.copy())
            sphere.add(vector, label)
            self.spheres.append(sphere)
            placed = 0
        else:
            index, distance = self._nearest_sphere(vector)
            if self.delta <= 0.0 and distance > 0.0:
                # First meaningful inter-pattern distance initialises delta.
                self.delta = self.config.init_fraction * distance
            if distance <= self.delta:
                self.spheres[index].add(vector, label)
                self.delta *= 1.0 - self.config.shrink_rate
                placed = index
            else:
                sphere = SensitivitySphere(center=vector.copy())
                sphere.add(vector, label)
                self.spheres.append(sphere)
                self.delta += self.config.grow_rate * (distance - self.delta)
                placed = len(self.spheres) - 1
        self._set_center(placed, self.spheres[placed].center)
        self._tree = None  # rebuilt lazily on the next large query
        self.stats.patterns_trained += 1
        self.stats.training_seconds += time.perf_counter() - start
        return placed

    def fit(self, patterns: Sequence[np.ndarray] | np.ndarray, labels: Sequence[Hashable]) -> "MesoClassifier":
        """Train on a batch of labelled patterns (order matters: MESO is online)."""
        matrix = np.atleast_2d(np.asarray(patterns, dtype=float))
        if matrix.shape[0] != len(labels):
            raise ValueError(
                f"got {matrix.shape[0]} patterns but {len(labels)} labels"
            )
        for row, label in zip(matrix, labels):
            self.partial_fit(row, label)
        return self

    def reset(self) -> None:
        """Forget everything (empty memory, delta back to its initial value)."""
        self.spheres.clear()
        self.delta = self.config.initial_delta
        self._tree = None
        self._centers = None
        self._dimension = None
        self.stats = TrainingStats()

    # -- queries -----------------------------------------------------------

    def query(self, pattern: np.ndarray) -> SensitivitySphere:
        """Return the sensitivity sphere most similar to ``pattern``."""
        start = time.perf_counter()
        vector = self._check_dimension(pattern)
        index, _ = self._nearest_sphere(vector)
        self.stats.patterns_tested += 1
        self.stats.testing_seconds += time.perf_counter() - start
        return self.spheres[index]

    def predict(self, pattern: np.ndarray) -> Hashable:
        """Predict the label of one pattern (majority label of the nearest sphere)."""
        return self.query(pattern).majority_label()

    def query_batch(
        self, patterns: Sequence[np.ndarray] | np.ndarray
    ) -> list[SensitivitySphere]:
        """Nearest sensitivity sphere for every pattern of a batch.

        One vectorised distance computation against the centre matrix
        replaces a Python-level loop of scalar queries; the returned
        spheres are exactly those per-pattern :meth:`query` calls would
        return, in input order.
        """
        if len(patterns) == 0:
            return []
        start = time.perf_counter()
        matrix = self._check_matrix(patterns)
        indices = self._nearest_sphere_indices(matrix)
        self.stats.patterns_tested += matrix.shape[0]
        self.stats.testing_seconds += time.perf_counter() - start
        return [self.spheres[index] for index in indices]

    def predict_batch(self, patterns: Sequence[np.ndarray] | np.ndarray) -> list[Hashable]:
        """Predict labels for a batch of patterns (vectorised).

        Equivalent to ``[self.predict(p) for p in patterns]`` — the
        equivalence is covered by tests — but the nearest-sphere search
        runs as a single NumPy computation over all query patterns.
        """
        return [sphere.majority_label() for sphere in self.query_batch(patterns)]

    def predict_proba(self, pattern: np.ndarray) -> dict[Hashable, float]:
        """Label distribution of the nearest sphere (not calibrated probabilities)."""
        return self.query(pattern).label_distribution()

    # -- persistence -------------------------------------------------------

    def save(self, path, backend: str = "auto"):
        """Persist this memory to ``path`` through the feature-store backends.

        The saved form replays bit-identically on load (centres are
        verified against the stored matrix); see
        :func:`repro.store.save_meso`.  Labels must be strings.
        """
        from ..store.meso_io import save_meso

        return save_meso(self, path, backend=backend)

    @classmethod
    def load(cls, path) -> "MesoClassifier":
        """Load a memory saved by :meth:`save`, verifying integrity."""
        from ..store.meso_io import load_meso

        return load_meso(path)

    # -- introspection -----------------------------------------------------

    def describe(self) -> dict:
        """Summary of the memory: sphere count, pattern count, delta, timings."""
        return {
            "spheres": self.sphere_count,
            "patterns": self.pattern_count,
            "delta": self.delta,
            "labels": sorted(str(label) for label in self.labels()),
            "training_seconds": self.stats.training_seconds,
            "testing_seconds": self.stats.testing_seconds,
        }
