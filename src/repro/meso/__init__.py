"""MESO perceptual memory: sensitivity spheres, sphere tree and classifier."""

from .classifier import MesoClassifier, MesoConfig, TrainingStats
from .distance import METRICS, get_metric
from .sphere import SensitivitySphere
from .tree import SphereTree, SphereTreeNode

__all__ = [
    "METRICS",
    "MesoClassifier",
    "MesoConfig",
    "SensitivitySphere",
    "SphereTree",
    "SphereTreeNode",
    "TrainingStats",
    "get_metric",
]
