"""Hierarchical sphere tree.

MESO organises its sensitivity spheres in an agglomerative hierarchy so
queries need not compare a test pattern against every sphere.  This module
builds a binary partition tree over sphere centres: each internal node picks
two pivot spheres (the pair of children centres farthest apart among a
sample) and assigns every sphere to its nearer pivot.  Queries descend
toward the nearer pivot, optionally backtracking into the farther branch
when the current best distance does not rule it out, so accuracy is
preserved while most comparisons are pruned.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .sphere import SensitivitySphere

__all__ = ["SphereTree", "SphereTreeNode"]


@dataclass
class SphereTreeNode:
    """A node of the sphere partition tree."""

    #: Indices (into the tree's sphere list) covered by this node.
    indices: list[int]
    #: Mean of the covered sphere centres.
    centroid: np.ndarray
    #: Radius: max distance from the centroid to any covered centre.
    radius: float
    left: "SphereTreeNode | None" = None
    right: "SphereTreeNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


@dataclass
class SphereTree:
    """Partition tree over a fixed list of spheres.

    The tree holds references to the spheres it was built from; rebuilding
    after incremental training is the caller's responsibility (the
    classifier rebuilds lazily when the sphere count has grown enough).
    """

    spheres: list[SensitivitySphere]
    leaf_size: int = 8
    root: SphereTreeNode | None = field(init=False, default=None)
    _centers: np.ndarray = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        if self.leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {self.leaf_size}")
        if self.spheres:
            self._centers = np.stack([s.center for s in self.spheres])
            self.root = self._build(list(range(len(self.spheres))))

    # -- construction -----------------------------------------------------

    def _node_for(self, indices: list[int]) -> SphereTreeNode:
        centers = self._centers[indices]
        centroid = centers.mean(axis=0)
        diffs = centers - centroid[None, :]
        radius = float(np.sqrt(np.max(np.einsum("ij,ij->i", diffs, diffs)))) if indices else 0.0
        return SphereTreeNode(indices=indices, centroid=centroid, radius=radius)

    def _build(self, indices: list[int]) -> SphereTreeNode:
        node = self._node_for(indices)
        if len(indices) <= self.leaf_size:
            return node
        left_idx, right_idx = self._split(indices)
        if not left_idx or not right_idx:
            return node
        node.left = self._build(left_idx)
        node.right = self._build(right_idx)
        return node

    def _split(self, indices: list[int]) -> tuple[list[int], list[int]]:
        """Pick two far-apart pivots and partition ``indices`` between them."""
        centers = self._centers[indices]
        # Deterministic two-sweep farthest-pair heuristic.
        first = 0
        diffs = centers - centers[first][None, :]
        pivot_a = int(np.argmax(np.einsum("ij,ij->i", diffs, diffs)))
        diffs = centers - centers[pivot_a][None, :]
        pivot_b = int(np.argmax(np.einsum("ij,ij->i", diffs, diffs)))
        if pivot_a == pivot_b:
            return indices, []
        da = np.linalg.norm(centers - centers[pivot_a][None, :], axis=1)
        db = np.linalg.norm(centers - centers[pivot_b][None, :], axis=1)
        left_mask = da <= db
        left = [idx for idx, keep in zip(indices, left_mask) if keep]
        right = [idx for idx, keep in zip(indices, left_mask) if not keep]
        return left, right

    # -- queries ----------------------------------------------------------

    def nearest(self, query: np.ndarray, exact: bool = True) -> tuple[int, float]:
        """Index of the sphere whose centre is nearest to ``query``.

        With ``exact=True`` the search backtracks whenever a pruned branch
        could still contain a closer centre (ball-tree bound), so the result
        matches brute force.  With ``exact=False`` the search is greedy
        (defeatist) and trades a little accuracy for speed.
        """
        if not self.spheres or self.root is None:
            raise ValueError("tree is empty")
        vector = np.asarray(query, dtype=float).ravel()
        best = {"index": -1, "distance": np.inf}
        self._search(self.root, vector, best, exact)
        return best["index"], float(best["distance"])

    def _search(self, node: SphereTreeNode, query: np.ndarray, best: dict, exact: bool) -> None:
        if node.is_leaf:
            centers = self._centers[node.indices]
            dists = np.linalg.norm(centers - query[None, :], axis=1)
            local = int(np.argmin(dists))
            if dists[local] < best["distance"]:
                best["distance"] = float(dists[local])
                best["index"] = node.indices[local]
            return
        children = [child for child in (node.left, node.right) if child is not None]
        order = sorted(children, key=lambda c: np.linalg.norm(c.centroid - query))
        for rank, child in enumerate(order):
            bound = np.linalg.norm(child.centroid - query) - child.radius
            if rank == 0 or (exact and bound < best["distance"]):
                self._search(child, query, best, exact)

    def brute_force_nearest(self, query: np.ndarray) -> tuple[int, float]:
        """Reference linear scan over all sphere centres."""
        if not self.spheres:
            raise ValueError("tree is empty")
        vector = np.asarray(query, dtype=float).ravel()
        dists = np.linalg.norm(self._centers - vector[None, :], axis=1)
        index = int(np.argmin(dists))
        return index, float(dists[index])

    def __len__(self) -> int:
        return len(self.spheres)

    def depth(self) -> int:
        """Height of the tree (1 for a single leaf)."""
        def walk(node: SphereTreeNode | None) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return 1
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root)
