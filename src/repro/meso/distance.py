"""Distance metrics available to MESO.

MESO clusters patterns with a pluggable metric; Euclidean distance is the
default used in the paper's experiments.  Metrics are registered by name so
the classifier can be configured from plain strings in experiment configs.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..timeseries.distance import euclidean, manhattan, normalized_euclidean

__all__ = ["get_metric", "METRICS"]

MetricFn = Callable[[np.ndarray, np.ndarray], float]

METRICS: dict[str, MetricFn] = {
    "euclidean": euclidean,
    "manhattan": manhattan,
    "normalized_euclidean": normalized_euclidean,
}


def get_metric(name: str) -> MetricFn:
    """Look up a metric function by name."""
    key = name.lower()
    if key not in METRICS:
        raise ValueError(f"unknown metric '{name}'; choose from {sorted(METRICS)}")
    return METRICS[key]
