"""Real streaming chunk sources: WAV directories and TCP byte streams.

The unified pipeline consumes chunk iterables (``extract_stream``) and
corpora of independent sources (``run_corpus``).  This module supplies the
two sources that open real-recording workloads beyond in-memory clips:

* :class:`WavDirectorySource` — a directory of WAV recordings, exposed both
  as a *corpus* (one lazily-read :class:`WavChunkStream` per file, so
  ``run_corpus`` can parallelise across recordings without loading them all)
  and as one continuous chunk :meth:`~WavDirectorySource.stream` for
  ``extract_stream``;
* :class:`SocketChunkSource` — a TCP byte stream of 16-bit little-endian
  PCM, read with bounded buffering (one chunk at a time) and strict framing,
  so a station uplink can feed the pipeline live.  A mid-stream disconnect
  or stall surfaces as :class:`ChunkSourceError`, never as a silent
  truncation or an indefinite hang.

Both sources honour the engine's chunk invariance: the configured
``chunk_size`` changes only how data is handed over, never any result.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

from ..dsp.wav import pcm16_to_samples, wav_info

__all__ = [
    "ChunkSourceError",
    "WavChunkStream",
    "WavDirectorySource",
    "SocketChunkSource",
]

#: Bytes per sample of the 16-bit PCM wire/disk encoding.
_BYTES_PER_SAMPLE = 2


class ChunkSourceError(RuntimeError):
    """A streaming chunk source failed mid-stream (disconnect, stall, ...)."""


@dataclass(frozen=True)
class WavChunkStream:
    """One WAV recording as a re-iterable stream of float sample chunks.

    Only the header is read at construction time; iterating reads the PCM
    data incrementally in ``chunk_size``-sample pieces, so memory stays
    bounded no matter how long the recording is.  Multi-channel files yield
    their first channel, matching :meth:`BuiltPipeline.run` on a
    :class:`~repro.dsp.wav.WavClip`.

    The object carries its ``sample_rate``, so it can be handed directly to
    ``BuiltPipeline.run`` / ``run_corpus`` as one corpus item, and it is
    picklable (path + chunk size only), so the process backend can ship it
    to workers.
    """

    path: Path
    chunk_size: int = 4096

    def __post_init__(self) -> None:
        object.__setattr__(self, "path", Path(self.path))
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")

    @property
    def info(self):
        return wav_info(self.path)

    @property
    def sample_rate(self) -> int:
        return self.info.sample_rate

    @property
    def frames(self) -> int:
        return self.info.frames

    def __iter__(self) -> Iterator[np.ndarray]:
        info = self.info
        frame_bytes = info.channels * _BYTES_PER_SAMPLE
        stride = self.chunk_size * frame_bytes
        with open(self.path, "rb") as handle:
            handle.seek(info.data_offset)
            remaining = info.data_bytes
            leftover = b""
            while remaining > 0:
                blob = handle.read(min(stride - len(leftover), remaining))
                if not blob:
                    raise ChunkSourceError(
                        f"{self.path}: WAV data chunk truncated "
                        f"({remaining} bytes missing)"
                    )
                remaining -= len(blob)
                blob = leftover + blob
                # Short reads need not land on a frame boundary; carry the
                # partial frame into the next read instead of dropping it,
                # which would shift every later sample.
                usable = len(blob) - len(blob) % frame_bytes
                leftover = blob[usable:]
                pcm = np.frombuffer(blob[:usable], dtype="<i2")
                if info.channels > 1:
                    pcm = pcm[:: info.channels]
                if pcm.size:
                    yield pcm16_to_samples(pcm)
            # A trailing partial frame means a malformed data chunk; drop it
            # exactly as read_wav does.


@dataclass
class WavDirectorySource:
    """A directory of WAV recordings as a pipeline corpus or chunk stream.

    Files are ordered by name, so corpus order is deterministic.  Iterating
    the source yields one :class:`WavChunkStream` per file — the shape
    ``run_corpus`` expects::

        source = WavDirectorySource("recordings/", chunk_size=2048)
        results = pipe.run_corpus(source, backend="process")

    :meth:`stream` instead concatenates every recording into a single
    continuous chunk iterator for ``extract_stream`` (all files must then
    share one sample rate).
    """

    directory: Path
    pattern: str = "*.wav"
    chunk_size: int = 4096

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)
        if not self.directory.is_dir():
            raise FileNotFoundError(f"{self.directory}: not a directory")
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")

    @property
    def paths(self) -> list[Path]:
        return sorted(self.directory.glob(self.pattern))

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self) -> Iterator[WavChunkStream]:
        for path in self.paths:
            yield WavChunkStream(path, chunk_size=self.chunk_size)

    @property
    def sample_rate(self) -> int:
        """The common sample rate of the recordings (validated)."""
        rates = {wav_info(path).sample_rate for path in self.paths}
        if not rates:
            raise ChunkSourceError(
                f"{self.directory}: no files match {self.pattern!r}"
            )
        if len(rates) > 1:
            raise ChunkSourceError(
                f"{self.directory}: recordings disagree on sample rate: "
                f"{sorted(rates)}"
            )
        return rates.pop()

    def stream(self) -> Iterator[np.ndarray]:
        """All recordings as one continuous chunk stream (rate-checked)."""
        self.sample_rate  # validate before yielding anything
        for reader in self:
            yield from reader


@dataclass
class SocketChunkSource:
    """Chunks of 16-bit PCM read from a TCP connection.

    Iterating connects (unless an accepted ``sock`` is injected) and yields
    float chunks of exactly ``chunk_size`` samples until the peer shuts the
    stream down *at a chunk boundary*.  The wire protocol is deliberately
    bare — little-endian int16 samples, nothing else — so any recorder that
    can write PCM to a socket can feed the pipeline.

    Failure handling, because a field uplink will fail:

    * no bytes for ``timeout`` seconds → :class:`ChunkSourceError` (a stall
      never turns into an indefinite hang);
    * connection reset → :class:`ChunkSourceError`;
    * EOF in the middle of a chunk → :class:`ChunkSourceError` (a clean
      shutdown ends exactly on a chunk boundary; anything else means the
      sender died mid-write and the tail cannot be trusted).

    Buffering is bounded: at most one chunk's bytes are ever held.
    """

    host: str = "127.0.0.1"
    port: int = 0
    sample_rate: int = 22050
    chunk_size: int = 4096
    timeout: float = 5.0
    #: An already-connected socket to read instead of dialling host:port
    #: (used by servers that accept() the station's connection themselves).
    sock: socket.socket | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.sample_rate < 1:
            raise ValueError(f"sample_rate must be >= 1, got {self.sample_rate}")
        if self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")

    def _connect(self) -> socket.socket:
        if self.sock is not None:
            self.sock.settimeout(self.timeout)
            return self.sock
        try:
            return socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise ChunkSourceError(
                f"could not connect to {self.host}:{self.port}: {exc}"
            ) from exc

    def __iter__(self) -> Iterator[np.ndarray]:
        connection = self._connect()
        chunk_bytes = self.chunk_size * _BYTES_PER_SAMPLE
        try:
            while True:
                buffer = bytearray()
                while len(buffer) < chunk_bytes:
                    try:
                        piece = connection.recv(chunk_bytes - len(buffer))
                    except socket.timeout as exc:
                        raise ChunkSourceError(
                            f"stream stalled: no data for {self.timeout}s "
                            f"({len(buffer)} bytes of a "
                            f"{chunk_bytes}-byte chunk received)"
                        ) from exc
                    except OSError as exc:
                        raise ChunkSourceError(
                            f"connection lost mid-stream: {exc}"
                        ) from exc
                    if not piece:
                        if buffer:
                            raise ChunkSourceError(
                                "peer disconnected mid-chunk "
                                f"({len(buffer)} of {chunk_bytes} bytes); "
                                "the stream did not end on a chunk boundary"
                            )
                        return  # clean end of stream
                    buffer.extend(piece)
                yield pcm16_to_samples(np.frombuffer(bytes(buffer), dtype="<i2"))
        finally:
            connection.close()
