"""Compile a stage graph into Dynamic River operators.

``AcousticPipeline.to_river()`` lands here: every stage is wrapped in a thin
record operator, so the *same* stage objects that power batch runs and
``extract_stream()`` also run inside distributed pipeline segments.  The
wrappers only translate between records and events:

* :class:`ExtractStageOperator` feeds clip-scoped audio records into the
  extract stage as :class:`~repro.pipeline.results.SignalChunk` events and
  emits each completed ensemble as an ensemble scope
  (``OpenScope`` / audio data / ``CloseScope``) — or, in fragment mode,
  *streams* the scope while the ensemble is still open (OpenScope at the
  moment the run proves long enough, FRAGMENT data records as audio
  arrives, CloseScope when the trigger drops);
* :class:`EnsembleStageOperator` buffers one ensemble scope at a time,
  rebuilds the event it encodes, passes it through the wrapped stage
  (features, classify or any plugin) and re-emits the enriched scope.
  Fragmented scopes are not buffered when the wrapped stage consumes
  fragments: the operator pumps them through, appending FEATURES records
  to the open scope as each pattern completes.

Per-stage **fan-out** (``to_river(fan_out=k)``) compiles k replicas of a
per-ensemble stage behind a deterministic partition/merge pair::

    ... -> EnsemblePartitionOperator -> replica 0 -> ... -> replica k-1
        -> EnsembleMergeOperator -> ...

:class:`EnsemblePartitionOperator` tags each ensemble scope with the replica
that must process it (stable-hashed from the station that recorded the clip,
so one station's ensembles always flow through the same operator instance)
plus a monotonically increasing ordinal; every replica consumes exactly the
scopes addressed to it and passes the rest through untouched; and
:class:`EnsembleMergeOperator` strips the routing tags and re-emits the
scopes in ordinal — i.e. corpus — order.  Because the replica chain is a
plain linear operator sequence, it can be cut into
:class:`~repro.river.pipeline.PipelineSegment`\\ s (one replica per host)
and scheduled by :class:`~repro.river.placement.StationScheduler` like any
other Dynamic River pipeline.

Because the streaming engine is chunk-invariant, record boundaries do not
affect the output: running a clip through the compiled river pipeline yields
exactly the ensembles, patterns and labels of a batch ``run()`` over the
same clip — :func:`collect_result` parses them back into
:class:`~repro.pipeline.results.PipelineResult` form for convenience.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..river.operator_base import Operator
from ..river.operators.io_ops import ClipSource
from ..river.channels import QueueChannel
from ..river.errors import PlacementError
from ..river.pipeline import Pipeline as RiverPipeline, PipelineSegment, split_into_segments
from ..river.placement import Deployment, Host, StationScheduler, station_hash
from ..river.records import (
    Record,
    ScopeType,
    Subtype,
    close_scope,
    data_record,
    fragment_record,
    open_scope,
)
from ..synth.clips import AcousticClip
from .results import (
    ClassifiedEvent,
    EnsembleEvent,
    EnsembleFragmentEvent,
    FeaturesEvent,
    PipelineEvent,
    PipelineResult,
    SignalChunk,
    ensemble_from_fragments,
)
from ..core.cutter import Ensemble
from .stages import ExtractStage, FeatureStage, Stage

__all__ = [
    "ExtractStageOperator",
    "EnsembleStageOperator",
    "EnsemblePartitionOperator",
    "EnsembleMergeOperator",
    "DEPLOY_BACKENDS",
    "compile_to_river",
    "collect_result",
    "decode_ensemble_scope",
    "deploy_clips_via_river",
    "replica_groups",
    "run_clips_via_river",
]

#: Execution fabrics understood by :func:`deploy_clips_via_river`.
DEPLOY_BACKENDS = ("simulated", "process")

#: Context keys carrying fan-out routing metadata through a replica chain.
#: The partition operator writes them, replicas preserve them on transformed
#: scopes, and the merge operator strips them, so they never appear in the
#: pipeline's final output (fan-out streams stay bit-identical to linear).
ROUTING_REPLICA = "fanout_replica"
ROUTING_ORDINAL = "fanout_ordinal"


def _ensemble_context(event: PipelineEvent, sample_rate: int) -> dict:
    ensemble = event.ensemble
    context = {
        "start": int(ensemble.start),
        "end": int(ensemble.end),
        "sample_rate": int(sample_rate),
    }
    if isinstance(event, ClassifiedEvent):
        context["label"] = event.label
    elif ensemble.label is not None:
        context["label"] = ensemble.label
    return context


def decode_ensemble_scope(
    records: Sequence[Record], default_rate: int | None = None
) -> tuple[Ensemble, tuple[np.ndarray, ...], object] | None:
    """Decode one buffered ensemble scope back into its parts.

    ``records`` is the scope's OpenScope followed by its inner records (the
    CloseScope may be present or not).  Returns ``(ensemble, patterns,
    label)`` — the single decoder behind both the stage operators and
    :func:`collect_result`, so the record encoding produced by
    :func:`event_to_records` has exactly one reader to keep in sync.
    Returns None when the scope carries no audio.

    Both scope shapes decode identically: the buffered form (one AUDIO
    record with the whole ensemble) and the fragmented form (several
    FRAGMENT records streamed while the ensemble was open, concatenated
    here in arrival order).
    """
    opener = records[0]
    audio: np.ndarray | None = None
    fragments: list[np.ndarray] = []
    patterns: list[np.ndarray] = []
    label_record: Record | None = None
    for record in records[1:]:
        if not record.is_data:
            continue
        if record.subtype == Subtype.AUDIO.value:
            audio = np.asarray(record.payload, dtype=float).ravel()
        elif record.subtype == Subtype.FRAGMENT.value:
            fragments.append(np.asarray(record.payload, dtype=float).ravel())
        elif record.subtype == Subtype.FEATURES.value:
            patterns.append(np.asarray(record.payload, dtype=float).ravel())
        elif record.subtype == Subtype.LABEL.value:
            label_record = record
    if audio is not None and not fragments:
        fragments = [audio]
    if not fragments:
        return None
    context = opener.context
    if label_record is not None:
        label = label_record.context.get("label")
    else:
        label = context.get("label")
    rate = int(context.get("sample_rate", default_rate or 22050))
    ensemble = ensemble_from_fragments(
        fragments,
        int(context.get("start", 0)),
        context.get("end"),
        rate,
        label=label,
    )
    return ensemble, tuple(patterns), label


def event_to_records(
    event: PipelineEvent, depth: int, index: int, sample_rate: int
) -> list[Record]:
    """Encode one ensemble-lineage event as a well-formed ensemble scope."""
    ensemble = event.ensemble
    context = _ensemble_context(event, sample_rate)
    if isinstance(event, (FeaturesEvent, ClassifiedEvent)):
        # Lets result collectors count short ensembles (a feature stage ran
        # but the run was too brief for a single pattern).
        context["n_patterns"] = len(event.patterns)
    records = [
        open_scope(
            scope=depth,
            scope_type=ScopeType.ENSEMBLE.value,
            sequence=index,
            context=dict(context),
        ),
        data_record(
            ensemble.samples,
            subtype=Subtype.AUDIO.value,
            scope=depth + 1,
            scope_type=ScopeType.ENSEMBLE.value,
            sequence=index,
            context=dict(context),
        ),
    ]
    for pattern_index, pattern in enumerate(event.patterns):
        records.append(
            data_record(
                pattern,
                subtype=Subtype.FEATURES.value,
                scope=depth + 1,
                scope_type=ScopeType.ENSEMBLE.value,
                sequence=pattern_index,
                context=dict(context),
            )
        )
    if isinstance(event, ClassifiedEvent):
        records.append(
            data_record(
                np.zeros(0),
                subtype=Subtype.LABEL.value,
                scope=depth + 1,
                scope_type=ScopeType.ENSEMBLE.value,
                sequence=index,
                context={**context, "votes": dict(event.votes)},
            )
        )
    records.append(
        close_scope(scope=depth, scope_type=ScopeType.ENSEMBLE.value, sequence=index)
    )
    return records


class ExtractStageOperator(Operator):
    """Run the extract stage over clip-scoped audio records.

    The output stream contains ensembles only (like the classic ``cutter``
    operator): an ensemble scope per completed ensemble, with the clip's
    scope records forwarded around them.

    With ``ExtractStage(emit="fragments")`` the ensemble scopes are
    *streamed* instead of buffered: the OpenScope goes out the moment a
    trigger-high run proves long enough (tagged ``fragmented`` in its
    context), each audio slice follows as a FRAGMENT data record while the
    run is still open, and the CloseScope goes out when the trigger drops.
    Downstream operators and collectors decode both scope shapes
    identically, so fragment mode changes memory and latency, never output.
    """

    def __init__(self, stage: ExtractStage, name: str = "extract-stage") -> None:
        super().__init__(name)
        self.stage = stage
        self._depth = 0
        self._index = 0
        self._offset = 0
        self._in_clip = False
        self._frag_sequence = 0

    def _emit(self, events: list[PipelineEvent]) -> list[Record]:
        records: list[Record] = []
        for event in events:
            if isinstance(event, EnsembleFragmentEvent):
                records.extend(self._fragment_records(event))
            elif isinstance(event, EnsembleEvent):
                records.extend(
                    event_to_records(event, self._depth, self._index, self.stage.sample_rate)
                )
                self._index += 1
        return records

    def _fragment_records(self, event: EnsembleFragmentEvent) -> list[Record]:
        if event.kind == "open":
            self._frag_sequence = 0
            return [
                open_scope(
                    scope=self._depth,
                    scope_type=ScopeType.ENSEMBLE.value,
                    sequence=self._index,
                    context={
                        "start": int(event.start),
                        "sample_rate": int(self.stage.sample_rate),
                        "fragmented": True,
                    },
                )
            ]
        if event.kind == "data":
            record = fragment_record(
                event.samples,
                scope=self._depth + 1,
                sequence=self._frag_sequence,
                context={"start": int(event.start), "offset": int(event.offset)},
            )
            self._frag_sequence += 1
            return [record]
        record = close_scope(
            scope=self._depth, scope_type=ScopeType.ENSEMBLE.value, sequence=self._index
        )
        self._index += 1
        return [record]

    def _flush_stage(self) -> list[Record]:
        # Flush unconditionally: a trailing open ensemble must be emitted
        # even on streams without clip scopes (e.g. a raw uplink source
        # ending in END_OF_STREAM).  A second flush after a clip close is a
        # harmless no-op.
        self._in_clip = False
        return self._emit(self.stage.flush())

    def process(self, record: Record) -> list[Record]:
        if record.is_open and record.scope_type == ScopeType.CLIP.value:
            self.stage.reset()
            self.stage.start(
                int(record.context.get("sample_rate", self.stage.config.sample_rate))
            )
            self._depth = record.scope + 1
            self._index = 0
            self._offset = 0
            self._in_clip = True
            return [record]
        if record.is_close and record.scope_type == ScopeType.CLIP.value:
            outputs = self._flush_stage()
            record.context = {**record.context, "total_samples": self.stage.samples_seen}
            outputs.append(record)
            return outputs
        if record.is_end:
            return self._flush_stage() + [record]
        if not (record.is_data and record.subtype == Subtype.AUDIO.value):
            return [record]
        chunk = SignalChunk(
            samples=record.payload,
            sample_rate=self.stage.sample_rate,
            offset=self._offset,
        )
        self._offset += chunk.samples.size
        return self._emit(self.stage.process(chunk))

    def flush(self) -> list[Record]:
        return self._flush_stage()

    def reset(self) -> None:
        super().reset()
        self.stage.reset()
        self._index = 0
        self._offset = 0
        self._in_clip = False
        self._frag_sequence = 0


class EnsembleStageOperator(Operator):
    """Run a per-ensemble stage (features, classify, plugins) over scopes.

    With ``replica`` set, the operator is one instance of a fan-out group:
    it only consumes ensemble scopes whose
    :data:`ROUTING_REPLICA` context tag matches its index and forwards every
    other record — including sibling replicas' scopes — untouched, so a
    chain of replicas behaves like k parallel operators in a linear stream.

    Scopes tagged ``fragmented`` by an upstream fragment-mode extract
    operator are not buffered when the wrapped stage consumes fragments
    (:attr:`~repro.pipeline.stages.Stage.consumes_fragments`): the operator
    *pumps* instead — the OpenScope and every FRAGMENT record pass straight
    through while the stage sees the equivalent fragment events, and each
    pattern the stage completes is appended to the open scope as a FEATURES
    record the moment it exists.  Stages that need the whole ensemble
    (classification voting) keep the buffered path.
    """

    def __init__(
        self,
        stage: Stage,
        name: str | None = None,
        replica: int | None = None,
        group: str | None = None,
    ) -> None:
        super().__init__(name or f"{stage.name}-stage")
        self.stage = stage
        self.replica = replica
        #: Fan-out group label (the fanned stage's name) — schedulers use it
        #: to keep sibling replicas on distinct hosts; None outside fan-out.
        self.fanout_group = group
        self._buffer: list[Record] | None = None
        self._sample_rate: int | None = None
        self._started = False
        #: Live state of a fragmented scope being pumped (None outside one).
        self._pump: dict | None = None

    def _decode(
        self, records: list[Record], close_record: Record | None = None
    ) -> PipelineEvent | None:
        """Rebuild the event encoded by one buffered ensemble scope."""
        decoded = decode_ensemble_scope(records, default_rate=self._sample_rate)
        if decoded is None:
            return None
        ensemble, patterns, _ = decoded
        if patterns:
            return FeaturesEvent(ensemble=ensemble, patterns=patterns)
        stamped = records[0].context.get("n_patterns")
        if stamped is None and close_record is not None:
            stamped = close_record.context.get("n_patterns")
        if stamped is not None:
            # A feature stage already ran and built zero patterns (the run
            # was too short): keep that knowledge as an empty FeaturesEvent
            # so the short-ensemble count survives re-encoding downstream.
            return FeaturesEvent(ensemble=ensemble, patterns=())
        return EnsembleEvent(ensemble=ensemble)

    def _encode(self, events: list[PipelineEvent], depth: int, index: int) -> list[Record]:
        records: list[Record] = []
        for event in events:
            if not isinstance(event, (EnsembleEvent, FeaturesEvent, ClassifiedEvent)):
                continue
            if event.ensemble is None:
                # A partial per-pattern event: only meaningful while pumping
                # a fragmented scope, never as a standalone scope.
                continue
            rate = event.ensemble.sample_rate
            records.extend(event_to_records(event, depth, index, rate))
        return records

    # -- fragment pumping -----------------------------------------------------

    def _pump_open(self, record: Record) -> list[Record]:
        context = record.context
        rate = int(context.get("sample_rate", self._sample_rate or 22050))
        if not self._started:
            self._sample_rate = rate
            self.stage.start(rate)
            self._started = True
        start = int(context.get("start", 0))
        self._pump = {"depth": record.scope, "start": start, "rate": rate, "samples": 0, "features": 0}
        # The stage only sees markers here; its forwarded events are not
        # re-encoded (the original records pass through instead).
        self.stage.process(
            EnsembleFragmentEvent(kind="open", start=start, sample_rate=rate)
        )
        return [record]

    def _pump_record(self, record: Record) -> list[Record]:
        pump = self._pump
        assert pump is not None
        if record.is_close and record.scope_type == ScopeType.ENSEMBLE.value:
            self._pump = None
            end = pump["start"] + pump["samples"]
            close_event = EnsembleFragmentEvent(
                kind="close",
                start=pump["start"],
                sample_rate=pump["rate"],
                end=max(end, pump["start"] + 1),
            )
            # Close the stage's session; terminal events are dropped — their
            # patterns already streamed out as FEATURES records.
            self.stage.process(close_event)
            if not record.is_bad_close and pump["features"] == 0:
                # Too short for a single pattern: stamp the close so result
                # collectors can count it (the opener is long gone).
                record.context = {**record.context, "n_patterns": 0}
            return [record]
        if record.is_data and record.subtype == Subtype.FRAGMENT.value:
            samples = np.asarray(record.payload, dtype=float).ravel()
            offset = pump["start"] + pump["samples"]
            pump["samples"] += samples.size
            outputs = [record]
            events = self.stage.process(
                EnsembleFragmentEvent(
                    kind="data",
                    start=pump["start"],
                    sample_rate=pump["rate"],
                    samples=samples,
                    offset=offset,
                )
            )
            for event in events:
                if not isinstance(event, FeaturesEvent):
                    continue
                for pattern in event.patterns:
                    outputs.append(
                        data_record(
                            pattern,
                            subtype=Subtype.FEATURES.value,
                            scope=pump["depth"] + 1,
                            scope_type=ScopeType.ENSEMBLE.value,
                            sequence=pump["features"],
                            context={"start": pump["start"], "sample_rate": pump["rate"]},
                        )
                    )
                    pump["features"] += 1
            return outputs
        return [record]

    def process(self, record: Record) -> list[Record]:
        if self._pump is not None:
            return self._pump_record(record)
        if self._buffer is not None:
            if record.is_close and record.scope_type == ScopeType.ENSEMBLE.value:
                buffered = self._buffer
                self._buffer = None
                if record.is_bad_close:
                    # The scope never reached its true close; nothing was
                    # forwarded for it, so nothing needs repairing downstream.
                    return []
                event = self._decode(buffered, close_record=record)
                if event is None:
                    return []
                if not self._started:
                    # Bare uplink streams carry no clip OpenScope to start
                    # the stage from; the ensemble's own rate serves.
                    self._sample_rate = int(event.ensemble.sample_rate)
                    self.stage.start(self._sample_rate)
                    self._started = True
                outputs = self.stage.process(event)
                encoded = self._encode(outputs, buffered[0].scope, buffered[0].sequence)
                return self._preserve_routing(buffered[0], encoded)
            self._buffer.append(record)
            return []
        if record.is_open and record.scope_type == ScopeType.ENSEMBLE.value:
            if (
                self.replica is not None
                and record.context.get(ROUTING_REPLICA) != self.replica
            ):
                # Addressed to a sibling replica (or already transformed by
                # one): pass through; its inner records follow while our
                # buffer stays empty, so they pass through too.
                return [record]
            if record.context.get("fragmented") and getattr(
                self.stage, "consumes_fragments", False
            ):
                return self._pump_open(record)
            self._buffer = [record]
            return []
        if record.is_open and record.scope_type == ScopeType.CLIP.value:
            self.stage.reset()
            rate = record.context.get("sample_rate")
            if rate is not None:
                self._sample_rate = int(rate)
                self.stage.start(self._sample_rate)
                self._started = True
            return [record]
        return [record]

    @staticmethod
    def _preserve_routing(opener: Record, encoded: list[Record]) -> list[Record]:
        """Carry fan-out routing tags from the consumed scope's opener onto
        the transformed scope, so the downstream merge can restore order."""
        routing = {
            key: opener.context[key]
            for key in (ROUTING_REPLICA, ROUTING_ORDINAL)
            if key in opener.context
        }
        if routing:
            for record in encoded:
                if record.is_open and record.scope_type == ScopeType.ENSEMBLE.value:
                    record.context = {**record.context, **routing}
        return encoded

    def flush(self) -> list[Record]:
        self._buffer = None
        self._pump = None
        return self._encode(self.stage.flush(), depth=0, index=0)

    def reset(self) -> None:
        super().reset()
        self.stage.reset()
        self._buffer = None
        self._pump = None
        self._started = False


class EnsemblePartitionOperator(Operator):
    """Deterministically route ensemble scopes to fan-out replicas.

    Each ensemble OpenScope is tagged with the index of the replica that
    must process it and a monotonically increasing ordinal.  The default
    ``partition="station"`` policy keys on the station that recorded the
    enclosing clip (stable CRC-32 hash modulo the replica count), so
    ensembles from different stations flow through different operator
    instances while one station's ensembles always share a replica —
    exactly the placement the paper's multi-station observatory needs.
    Clips without a station id (and ``partition="roundrobin"``) fall back
    to cycling through the replicas per ensemble.
    """

    PARTITIONS = ("station", "roundrobin")

    def __init__(
        self, fan_out: int, partition: str = "station", name: str = "ensemble-partition"
    ) -> None:
        super().__init__(name)
        if fan_out < 1:
            raise ValueError(f"fan_out must be >= 1, got {fan_out}")
        if partition not in self.PARTITIONS:
            raise ValueError(
                f"partition must be one of {', '.join(self.PARTITIONS)}; "
                f"got {partition!r}"
            )
        self.fan_out = fan_out
        self.partition = partition
        self._station = None
        self._ordinal = 0
        self._round_robin = 0

    def _replica_for(self) -> int:
        if self.partition == "station" and self._station is not None:
            return station_hash(self._station) % self.fan_out
        replica = self._round_robin % self.fan_out
        self._round_robin += 1
        return replica

    def process(self, record: Record) -> list[Record]:
        if record.is_open and record.scope_type == ScopeType.CLIP.value:
            self._station = record.context.get("station_id")
            return [record]
        if (
            record.is_open
            and record.scope_type == ScopeType.ENSEMBLE.value
            and ROUTING_REPLICA not in record.context
        ):
            record.context = {
                **record.context,
                ROUTING_REPLICA: self._replica_for(),
                ROUTING_ORDINAL: self._ordinal,
            }
            self._ordinal += 1
        return [record]

    def reset(self) -> None:
        super().reset()
        self._station = None
        self._ordinal = 0
        self._round_robin = 0


class EnsembleMergeOperator(Operator):
    """Strip fan-out routing tags and restore ordinal (corpus) order.

    Tagged ensemble scopes are buffered whole and released strictly in the
    order the partition operator numbered them; a scope that arrives early
    (e.g. because a replica held a sibling's scope until its flush) waits in
    the reorder buffer.  Any scopes still pending at a clip boundary or at
    flush are released in ordinal order — ordinals lost to a repaired
    (bad-closed) scope upstream therefore delay output only until the next
    boundary, never forever.  Untagged records pass straight through, so the
    merge is a no-op outside fan-out groups.
    """

    def __init__(self, name: str = "ensemble-merge") -> None:
        super().__init__(name)
        self._buffer: list[Record] | None = None
        self._pending: dict[int, list[Record]] = {}
        self._next_ordinal = 0
        self._ordinal_of_current = 0

    @staticmethod
    def _strip(record: Record) -> Record:
        if ROUTING_REPLICA in record.context or ROUTING_ORDINAL in record.context:
            record.context = {
                key: value
                for key, value in record.context.items()
                if key not in (ROUTING_REPLICA, ROUTING_ORDINAL)
            }
        return record

    def _release_ready(self) -> list[Record]:
        """Emit buffered scopes that are next in ordinal order."""
        outputs: list[Record] = []
        while self._next_ordinal in self._pending:
            outputs.extend(self._pending.pop(self._next_ordinal))
            self._next_ordinal += 1
        return outputs

    def _release_all(self) -> list[Record]:
        """Emit everything pending in ordinal order (boundary/flush path)."""
        outputs: list[Record] = []
        for ordinal in sorted(self._pending):
            outputs.extend(self._pending.pop(ordinal))
            self._next_ordinal = max(self._next_ordinal, ordinal + 1)
        return outputs

    def process(self, record: Record) -> list[Record]:
        if self._buffer is not None:
            self._buffer.append(self._strip(record))
            if record.is_close and record.scope_type == ScopeType.ENSEMBLE.value:
                scope, ordinal = self._buffer, self._ordinal_of_current
                self._buffer = None
                # extend, never assign: a stage may emit several scopes per
                # input ensemble, and they all carry the input's ordinal.
                self._pending.setdefault(ordinal, []).extend(scope)
                return self._release_ready()
            return []
        if (
            record.is_open
            and record.scope_type == ScopeType.ENSEMBLE.value
            and ROUTING_ORDINAL in record.context
        ):
            self._ordinal_of_current = int(record.context[ROUTING_ORDINAL])
            self._buffer = [self._strip(record)]
            return []
        if record.is_close and record.scope_type == ScopeType.CLIP.value:
            return self._release_all() + [record]
        if record.is_end:
            return self._release_all() + [record]
        return [record]

    def flush(self) -> list[Record]:
        leftovers: list[Record] = []
        if self._buffer is not None:
            # A tagged scope whose close never arrived — surface what we
            # have rather than dropping it silently.
            leftovers = self._buffer
            self._buffer = None
        return self._release_all() + leftovers

    def reset(self) -> None:
        super().reset()
        self._buffer = None
        self._pending = {}
        self._next_ordinal = 0
        self._ordinal_of_current = 0


def _prefer_streaming_features(stages: Sequence[Stage]) -> None:
    """Keep pumped feature stages memory-bounded inside river graphs.

    A pumped :class:`~repro.pipeline.stages.FeatureStage` never needs its
    terminal whole-ensemble event — the operator streams patterns out as
    FEATURES records and drops terminal events — so reassembling fragments
    inside the stage would only buffer audio nobody reads.  Flip freshly
    instantiated feature stages to ``emit="patterns"``; on buffered (non
    fragment) graphs the flag has no effect at all.
    """
    for stage in stages:
        if isinstance(stage, FeatureStage):
            stage.emit = "patterns"


def _normalize_fan_out(fan_out, stages: list[Stage]) -> dict[str, int]:
    """Resolve the fan_out argument into a per-stage replica count."""
    per_stage: dict[str, int] = {}
    if isinstance(fan_out, dict):
        known = {stage.name for stage in stages}
        for stage_name, count in fan_out.items():
            if stage_name not in known:
                raise ValueError(
                    f"fan_out names unknown stage {stage_name!r}; "
                    f"this pipeline has: {', '.join(sorted(known))}"
                )
            per_stage[stage_name] = int(count)
    else:
        per_stage = {
            stage.name: int(fan_out)
            for stage in stages
            if not isinstance(stage, ExtractStage)
        }
    for stage_name, count in per_stage.items():
        if count < 1:
            raise ValueError(
                f"fan_out for stage {stage_name!r} must be >= 1, got {count}"
            )
    extract_names = {s.name for s in stages if isinstance(s, ExtractStage)}
    fanned_extract = [n for n, k in per_stage.items() if n in extract_names and k > 1]
    if fanned_extract:
        raise ValueError(
            "the extract stage is a stateful chunk consumer and cannot be "
            f"fanned out (requested fan_out for {fanned_extract[0]!r})"
        )
    return per_stage


def _store_sink_operators(store_stages: list[Stage], store) -> list[Operator]:
    """Build the tail store sinks for a compiled river graph.

    One sink per distinct store path, sourced from declared ``store`` stages
    (which compile to sinks rather than in-graph stages — a sink survives
    segment cuts and fan-out untouched) plus the explicit ``store=`` path.
    """
    if not store_stages and store is None:
        return []
    from ..store.backends import StoreError
    from ..store.river_sink import StoreSinkOperator

    sinks: list[Operator] = []
    seen: set[str] = set()

    def _name() -> str:
        return "store-sink" if not sinks else f"store-sink-{len(sinks)}"

    for stage in store_stages:
        if stage.path is None:
            raise StoreError(
                "a store stage compiled into a river graph needs path= — a "
                "live StoreWriter cannot cross segment or process boundaries"
            )
        path = str(stage.path)
        if path in seen:
            continue
        seen.add(path)
        sinks.append(
            StoreSinkOperator(
                path,
                backend=stage.backend,
                recording_prefix=stage.recording_prefix,
                flush_values=stage.flush_values,
                name=_name(),
            )
        )
    if store is not None and str(store) not in seen:
        sinks.append(StoreSinkOperator(str(store), name=_name()))
    return sinks


def compile_to_river(
    builder,
    name: str = "acoustic-pipeline",
    fan_out: int | dict[str, int] = 1,
    partition: str = "station",
    store=None,
) -> RiverPipeline:
    """Instantiate a builder's stage graph as a Dynamic River pipeline.

    Fresh stage instances are created (trace accumulation disabled, since a
    river stream may be unbounded); the wrapped operators can be split into
    :class:`~repro.river.pipeline.PipelineSegment`\\ s and placed on hosts
    like any other operator chain.

    ``fan_out`` compiles each per-ensemble stage into that many parallel
    replicas behind an :class:`EnsemblePartitionOperator` /
    :class:`EnsembleMergeOperator` pair (an int applies to every
    per-ensemble stage; a mapping sets the count per stage name).  The
    extract stage consumes the raw chunk stream sequentially and cannot be
    fanned out.  ``partition`` selects the routing policy (``"station"`` or
    ``"roundrobin"``).  Fan-out never changes the output: the merge restores
    corpus order, so the record stream is bit-identical to ``fan_out=1``.

    ``store`` (a directory path) appends a
    :class:`~repro.store.StoreSinkOperator` at the graph's tail, persisting
    every ensemble scope as it streams past; declared ``store`` stages
    compile to the same tail sinks (never to in-graph stages, so fan-out and
    segment cuts flow around them unchanged).
    """
    all_stages = builder.instantiate(keep_traces=False)
    store_stages = [stage for stage in all_stages if stage.name == "store"]
    indexed = [
        (index, stage)
        for index, stage in enumerate(all_stages)
        if stage.name != "store"
    ]
    stages = [stage for _, stage in indexed]
    if isinstance(fan_out, dict) and "store" in fan_out:
        raise ValueError(
            "the store sink persists through a single writer and cannot be "
            "fanned out"
        )
    _prefer_streaming_features(stages)
    per_stage = _normalize_fan_out(fan_out, stages)
    # One independent instantiation per extra replica slot — of exactly the
    # stage being fanned out — so replica stages never share mutable state
    # (the classifier object itself is shared by construction, exactly as
    # thread workers share it).
    spare_stages = {
        spec_index: [
            builder.instantiate(only={spec_index}, keep_traces=False)[0]
            for _ in range(per_stage[stage.name] - 1)
        ]
        for spec_index, stage in indexed
        if per_stage.get(stage.name, 1) > 1
    }
    for spares in spare_stages.values():
        _prefer_streaming_features(spares)
    operators: list[Operator] = []
    for spec_index, stage in indexed:
        if isinstance(stage, ExtractStage):
            operators.append(ExtractStageOperator(stage))
            continue
        count = per_stage.get(stage.name, 1)
        if count == 1:
            operators.append(EnsembleStageOperator(stage))
            continue
        operators.append(
            EnsemblePartitionOperator(
                count, partition=partition, name=f"{stage.name}-partition"
            )
        )
        replicas = [stage] + spare_stages[spec_index]
        for replica_index, replica_stage in enumerate(replicas):
            operators.append(
                EnsembleStageOperator(
                    replica_stage,
                    name=f"{stage.name}-stage-r{replica_index}",
                    replica=replica_index,
                    group=stage.name,
                )
            )
        operators.append(EnsembleMergeOperator(name=f"{stage.name}-merge"))
    operators.extend(_store_sink_operators(store_stages, store))
    return RiverPipeline(operators, name=name)


def collect_result(records: Sequence[Record], sample_rate: int | None = None) -> PipelineResult:
    """Parse a compiled pipeline's output records back into a result.

    Ensemble scopes become index-aligned (ensemble, patterns, label) entries;
    ``total_samples`` is taken from the clip CloseScope annotation the
    extract operator leaves behind (0 when absent, e.g. on repaired streams).
    """
    result = PipelineResult(sample_rate=int(sample_rate or 0), total_samples=0)
    buffer: list[Record] | None = None
    for record in records:
        if record.is_open and record.scope_type == ScopeType.CLIP.value:
            rate = record.context.get("sample_rate")
            if rate is not None and not result.sample_rate:
                result.sample_rate = int(rate)
            continue
        if record.is_close and record.scope_type == ScopeType.CLIP.value:
            result.total_samples += int(record.context.get("total_samples", 0))
            continue
        if record.is_open and record.scope_type == ScopeType.ENSEMBLE.value:
            buffer = [record]
            continue
        if buffer is None:
            continue
        if record.is_close and record.scope_type == ScopeType.ENSEMBLE.value:
            opener = buffer[0]
            scope_records, buffer = buffer, None
            if record.is_bad_close:
                # The scope was truncated upstream (worker death, severed
                # link): a pumped fragment scope may have streamed partial
                # audio before the repair, but a truncated ensemble must
                # never masquerade as a real one — buffered mode drops such
                # scopes before they are ever forwarded.
                continue
            decoded = decode_ensemble_scope(
                scope_records, default_rate=result.sample_rate or None
            )
            if decoded is None:
                continue
            ensemble, patterns, label = decoded
            if not patterns:
                # A feature stage stamps how many patterns it built (on the
                # opener for buffered scopes, on the close for pumped ones);
                # zero means the run was too short for a single pattern.
                stamped = opener.context.get(
                    "n_patterns", record.context.get("n_patterns")
                )
                if stamped == 0:
                    result.short_ensembles += 1
            result.ensembles.append(ensemble)
            result.patterns.append(patterns)
            result.labels.append(label)
            continue
        buffer.append(record)
    return result


def replica_groups(segments: Sequence[PipelineSegment]) -> dict[str, str]:
    """Map fan-out replica segment names to their stage's group label.

    ``compile_to_river`` stamps every replica operator with the fanned
    stage's name (``EnsembleStageOperator.fanout_group``); a segment whose
    pipeline contains such an operator belongs to that group.  Reading the
    stamp — rather than parsing operator names — keeps this in lockstep
    with however the compiler labels its replicas.  Schedulers use the
    group label to spread the replicas of one stage across distinct hosts.
    """
    groups: dict[str, str] = {}
    for segment in segments:
        label = next(
            (
                op.fanout_group
                for op in segment.pipeline.operators
                if getattr(op, "fanout_group", None)
            ),
            None,
        )
        if label is not None:
            groups[segment.name] = label
    return groups


def _coerce_hosts(hosts) -> dict[str, float]:
    """Normalise the ``hosts`` argument into a name → speed mapping."""
    if hosts is None:
        hosts = 2
    if isinstance(hosts, int):
        if hosts < 1:
            raise ValueError(f"hosts must be >= 1, got {hosts}")
        return {f"host-{index}": 1000.0 for index in range(hosts)}
    if isinstance(hosts, dict):
        return {str(name): float(speed) for name, speed in hosts.items()}
    return {str(name): 1000.0 for name in hosts}


def deploy_clips_via_river(
    pipeline,
    clips: Sequence[AcousticClip],
    backend: str = "simulated",
    hosts=None,
    fan_out: int | dict[str, int] = 1,
    partition: str = "station",
    record_size: int = 4096,
    channel_capacity: int = 256,
    stall_timeout: float = 60.0,
    sample_rate: int | None = None,
    store=None,
) -> PipelineResult:
    """Deploy the compiled river graph on a fabric and run the clips through it.

    The same compiled graph — ``to_river(fan_out=...)`` split into per-host
    segments and placed by a :class:`~repro.river.placement.StationScheduler`
    (replicas spread across hosts, everything else partitioned sticky by
    segment name) — runs on the chosen ``backend``:

    * ``"simulated"`` — cooperative :class:`~repro.river.placement.Host`
      objects stepped round-robin inside this process (deterministic, no OS
      resources; the fabric used by experiments and most tests);
    * ``"process"`` — one real OS process per host, wired with TCP
      :class:`~repro.river.transport.SocketChannel` links between hosts and
      plain queues within one (the fabric that actually exercises process
      boundaries, serialization and backpressure over a wire).

    Both fabrics produce bit-identical results — to each other and to batch
    ``run()`` — because the record stream and operator order are the same;
    only where the work executes changes.  ``hosts`` is an int (that many
    equal hosts), an iterable of names, or a ``name -> speed`` mapping
    (speeds weight the simulated scheduler; the process fabric treats every
    host as one worker process).
    """
    if backend not in DEPLOY_BACKENDS:
        raise ValueError(
            f"backend must be one of {', '.join(DEPLOY_BACKENDS)}; got {backend!r}"
        )
    host_speeds = _coerce_hosts(hosts)
    river = pipeline.to_river(fan_out=fan_out, partition=partition, store=store)
    segments = split_into_segments(river)
    groups = replica_groups(segments)
    scheduler = StationScheduler(
        hosts={name: Host(name, speed=speed) for name, speed in host_speeds.items()}
    )
    plan = scheduler.plan(segments, groups)
    source = ClipSource(list(clips), record_size=record_size)
    rate = sample_rate or (int(clips[0].sample_rate) if clips else None)
    if backend == "process":
        from ..river.transport import ProcessDeployment

        deployment = ProcessDeployment(
            segments,
            plan,
            channel_capacity=channel_capacity,
            stall_timeout=stall_timeout,
        )
        outputs = deployment.run(source.generate())
        return collect_result(outputs, sample_rate=rate)
    deployment = Deployment()
    for name, speed in host_speeds.items():
        deployment.add_host(Host(name, speed=speed))
    # Bound the inter-segment channels like the socket fabric does (the feed
    # channel stays unbounded — the whole source is enqueued up front — and
    # the tail stays unbounded because run() has no consumer for it).
    for upstream, downstream in zip(segments, segments[1:]):
        bounded = QueueChannel(capacity=channel_capacity)
        upstream.rewire(output_channel=bounded)
        downstream.rewire(input_channel=bounded)
    for segment in segments:
        deployment.place(segment, plan[segment.name], group=groups.get(segment.name))
    for record in source.generate():
        segments[0].input_channel.put(record)
    outputs: list = []
    max_rounds = 100_000
    while True:
        rounds = deployment.run(max_rounds=max_rounds)
        outputs.extend(segments[-1].drain_output())
        if deployment.finished:
            break
        if rounds < max_rounds:
            # A zero-progress round with segments still running: nothing in
            # the deployment can change any more, so returning the partial
            # drain as a result would be silent truncation.
            stuck = ", ".join(s.name for s in segments if not s.finished)
            raise PlacementError(
                f"simulated deployment stalled before finishing: {stuck}"
            )
    return collect_result(outputs, sample_rate=rate)


def run_clips_via_river(
    pipeline,
    clips: Sequence[AcousticClip],
    record_size: int = 4096,
    fan_out: int | dict[str, int] = 1,
    partition: str = "station",
    store=None,
) -> PipelineResult:
    """Convenience: stream clips through the compiled river pipeline.

    ``pipeline`` is an :class:`~repro.pipeline.builder.AcousticPipeline` or a
    :class:`~repro.pipeline.builder.BuiltPipeline`; each clip is chunked into
    ``record_size`` audio records exactly as a station uplink would deliver
    it.  ``fan_out`` / ``partition`` / ``store`` are forwarded to
    ``to_river``.  Returns the combined result over all clips.
    """
    river = pipeline.to_river(fan_out=fan_out, partition=partition, store=store)
    source = ClipSource(list(clips), record_size=record_size)
    outputs = river.run_source(source)
    rate = int(clips[0].sample_rate) if clips else None
    return collect_result(outputs, sample_rate=rate)
