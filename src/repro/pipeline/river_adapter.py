"""Compile a stage graph into Dynamic River operators.

``AcousticPipeline.to_river()`` lands here: every stage is wrapped in a thin
record operator, so the *same* stage objects that power batch runs and
``extract_stream()`` also run inside distributed pipeline segments.  The
wrappers only translate between records and events:

* :class:`ExtractStageOperator` feeds clip-scoped audio records into the
  extract stage as :class:`~repro.pipeline.results.SignalChunk` events and
  emits each completed ensemble as an ensemble scope
  (``OpenScope`` / audio data / ``CloseScope``);
* :class:`EnsembleStageOperator` buffers one ensemble scope at a time,
  rebuilds the event it encodes, passes it through the wrapped stage
  (features, classify or any plugin) and re-emits the enriched scope.

Because the streaming engine is chunk-invariant, record boundaries do not
affect the output: running a clip through the compiled river pipeline yields
exactly the ensembles, patterns and labels of a batch ``run()`` over the
same clip — :func:`collect_result` parses them back into
:class:`~repro.pipeline.results.PipelineResult` form for convenience.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..river.operator_base import Operator
from ..river.operators.io_ops import ClipSource
from ..river.pipeline import Pipeline as RiverPipeline
from ..river.records import (
    Record,
    ScopeType,
    Subtype,
    close_scope,
    data_record,
    open_scope,
)
from ..synth.clips import AcousticClip
from .results import (
    ClassifiedEvent,
    EnsembleEvent,
    FeaturesEvent,
    PipelineEvent,
    PipelineResult,
    SignalChunk,
)
from ..core.cutter import Ensemble
from .stages import ExtractStage, Stage

__all__ = [
    "ExtractStageOperator",
    "EnsembleStageOperator",
    "compile_to_river",
    "collect_result",
    "decode_ensemble_scope",
    "run_clips_via_river",
]


def _ensemble_context(event: PipelineEvent, sample_rate: int) -> dict:
    ensemble = event.ensemble
    context = {
        "start": int(ensemble.start),
        "end": int(ensemble.end),
        "sample_rate": int(sample_rate),
    }
    if isinstance(event, ClassifiedEvent):
        context["label"] = event.label
    elif ensemble.label is not None:
        context["label"] = ensemble.label
    return context


def decode_ensemble_scope(
    records: Sequence[Record], default_rate: int | None = None
) -> tuple[Ensemble, tuple[np.ndarray, ...], object] | None:
    """Decode one buffered ensemble scope back into its parts.

    ``records`` is the scope's OpenScope followed by its inner records (the
    CloseScope may be present or not).  Returns ``(ensemble, patterns,
    label)`` — the single decoder behind both the stage operators and
    :func:`collect_result`, so the record encoding produced by
    :func:`event_to_records` has exactly one reader to keep in sync.
    Returns None when the scope carries no audio.
    """
    opener = records[0]
    audio: np.ndarray | None = None
    patterns: list[np.ndarray] = []
    label_record: Record | None = None
    for record in records[1:]:
        if not record.is_data:
            continue
        if record.subtype == Subtype.AUDIO.value:
            audio = np.asarray(record.payload, dtype=float).ravel()
        elif record.subtype == Subtype.FEATURES.value:
            patterns.append(np.asarray(record.payload, dtype=float).ravel())
        elif record.subtype == Subtype.LABEL.value:
            label_record = record
    if audio is None:
        return None
    context = opener.context
    if label_record is not None:
        label = label_record.context.get("label")
    else:
        label = context.get("label")
    rate = int(context.get("sample_rate", default_rate or 22050))
    start = int(context.get("start", 0))
    ensemble = Ensemble(
        samples=audio,
        start=start,
        end=int(context.get("end", start + audio.size)),
        sample_rate=rate,
        label=label,
    )
    return ensemble, tuple(patterns), label


def event_to_records(
    event: PipelineEvent, depth: int, index: int, sample_rate: int
) -> list[Record]:
    """Encode one ensemble-lineage event as a well-formed ensemble scope."""
    ensemble = event.ensemble
    context = _ensemble_context(event, sample_rate)
    records = [
        open_scope(
            scope=depth,
            scope_type=ScopeType.ENSEMBLE.value,
            sequence=index,
            context=dict(context),
        ),
        data_record(
            ensemble.samples,
            subtype=Subtype.AUDIO.value,
            scope=depth + 1,
            scope_type=ScopeType.ENSEMBLE.value,
            sequence=index,
            context=dict(context),
        ),
    ]
    for pattern_index, pattern in enumerate(event.patterns):
        records.append(
            data_record(
                pattern,
                subtype=Subtype.FEATURES.value,
                scope=depth + 1,
                scope_type=ScopeType.ENSEMBLE.value,
                sequence=pattern_index,
                context=dict(context),
            )
        )
    if isinstance(event, ClassifiedEvent):
        records.append(
            data_record(
                np.zeros(0),
                subtype=Subtype.LABEL.value,
                scope=depth + 1,
                scope_type=ScopeType.ENSEMBLE.value,
                sequence=index,
                context={**context, "votes": dict(event.votes)},
            )
        )
    records.append(
        close_scope(scope=depth, scope_type=ScopeType.ENSEMBLE.value, sequence=index)
    )
    return records


class ExtractStageOperator(Operator):
    """Run the extract stage over clip-scoped audio records.

    The output stream contains ensembles only (like the classic ``cutter``
    operator): an ensemble scope per completed ensemble, with the clip's
    scope records forwarded around them.
    """

    def __init__(self, stage: ExtractStage, name: str = "extract-stage") -> None:
        super().__init__(name)
        self.stage = stage
        self._depth = 0
        self._index = 0
        self._offset = 0
        self._in_clip = False

    def _emit(self, events: list[PipelineEvent]) -> list[Record]:
        records: list[Record] = []
        for event in events:
            if not isinstance(event, EnsembleEvent):
                continue
            records.extend(
                event_to_records(event, self._depth, self._index, self.stage.sample_rate)
            )
            self._index += 1
        return records

    def _flush_stage(self) -> list[Record]:
        # Flush unconditionally: a trailing open ensemble must be emitted
        # even on streams without clip scopes (e.g. a raw uplink source
        # ending in END_OF_STREAM).  A second flush after a clip close is a
        # harmless no-op.
        self._in_clip = False
        return self._emit(self.stage.flush())

    def process(self, record: Record) -> list[Record]:
        if record.is_open and record.scope_type == ScopeType.CLIP.value:
            self.stage.reset()
            self.stage.start(
                int(record.context.get("sample_rate", self.stage.config.sample_rate))
            )
            self._depth = record.scope + 1
            self._index = 0
            self._offset = 0
            self._in_clip = True
            return [record]
        if record.is_close and record.scope_type == ScopeType.CLIP.value:
            outputs = self._flush_stage()
            record.context = {**record.context, "total_samples": self.stage.samples_seen}
            outputs.append(record)
            return outputs
        if record.is_end:
            return self._flush_stage() + [record]
        if not (record.is_data and record.subtype == Subtype.AUDIO.value):
            return [record]
        chunk = SignalChunk(
            samples=record.payload,
            sample_rate=self.stage.sample_rate,
            offset=self._offset,
        )
        self._offset += chunk.samples.size
        return self._emit(self.stage.process(chunk))

    def flush(self) -> list[Record]:
        return self._flush_stage()

    def reset(self) -> None:
        super().reset()
        self.stage.reset()
        self._index = 0
        self._offset = 0
        self._in_clip = False


class EnsembleStageOperator(Operator):
    """Run a per-ensemble stage (features, classify, plugins) over scopes."""

    def __init__(self, stage: Stage, name: str | None = None) -> None:
        super().__init__(name or f"{stage.name}-stage")
        self.stage = stage
        self._buffer: list[Record] | None = None
        self._sample_rate: int | None = None

    def _decode(self, records: list[Record]) -> PipelineEvent | None:
        """Rebuild the event encoded by one buffered ensemble scope."""
        decoded = decode_ensemble_scope(records, default_rate=self._sample_rate)
        if decoded is None:
            return None
        ensemble, patterns, _ = decoded
        if patterns:
            return FeaturesEvent(ensemble=ensemble, patterns=patterns)
        return EnsembleEvent(ensemble=ensemble)

    def _encode(self, events: list[PipelineEvent], depth: int, index: int) -> list[Record]:
        records: list[Record] = []
        for event in events:
            if not isinstance(event, (EnsembleEvent, FeaturesEvent, ClassifiedEvent)):
                continue
            rate = event.ensemble.sample_rate
            records.extend(event_to_records(event, depth, index, rate))
        return records

    def process(self, record: Record) -> list[Record]:
        if self._buffer is not None:
            if record.is_close and record.scope_type == ScopeType.ENSEMBLE.value:
                buffered = self._buffer
                self._buffer = None
                if record.is_bad_close:
                    # The scope never reached its true close; nothing was
                    # forwarded for it, so nothing needs repairing downstream.
                    return []
                event = self._decode(buffered)
                if event is None:
                    return []
                outputs = self.stage.process(event)
                return self._encode(outputs, buffered[0].scope, buffered[0].sequence)
            self._buffer.append(record)
            return []
        if record.is_open and record.scope_type == ScopeType.ENSEMBLE.value:
            self._buffer = [record]
            return []
        if record.is_open and record.scope_type == ScopeType.CLIP.value:
            self.stage.reset()
            rate = record.context.get("sample_rate")
            if rate is not None:
                self._sample_rate = int(rate)
                self.stage.start(self._sample_rate)
            return [record]
        return [record]

    def flush(self) -> list[Record]:
        self._buffer = None
        return self._encode(self.stage.flush(), depth=0, index=0)

    def reset(self) -> None:
        super().reset()
        self.stage.reset()
        self._buffer = None


def compile_to_river(builder, name: str = "acoustic-pipeline") -> RiverPipeline:
    """Instantiate a builder's stage graph as a Dynamic River pipeline.

    Fresh stage instances are created (trace accumulation disabled, since a
    river stream may be unbounded); the wrapped operators can be split into
    :class:`~repro.river.pipeline.PipelineSegment`\\ s and placed on hosts
    like any other operator chain.
    """
    stages = builder.instantiate(keep_traces=False)
    operators: list[Operator] = []
    for stage in stages:
        if isinstance(stage, ExtractStage):
            operators.append(ExtractStageOperator(stage))
        else:
            operators.append(EnsembleStageOperator(stage))
    return RiverPipeline(operators, name=name)


def collect_result(records: Sequence[Record], sample_rate: int | None = None) -> PipelineResult:
    """Parse a compiled pipeline's output records back into a result.

    Ensemble scopes become index-aligned (ensemble, patterns, label) entries;
    ``total_samples`` is taken from the clip CloseScope annotation the
    extract operator leaves behind (0 when absent, e.g. on repaired streams).
    """
    result = PipelineResult(sample_rate=int(sample_rate or 0), total_samples=0)
    buffer: list[Record] | None = None
    for record in records:
        if record.is_open and record.scope_type == ScopeType.CLIP.value:
            rate = record.context.get("sample_rate")
            if rate is not None and not result.sample_rate:
                result.sample_rate = int(rate)
            continue
        if record.is_close and record.scope_type == ScopeType.CLIP.value:
            result.total_samples += int(record.context.get("total_samples", 0))
            continue
        if record.is_open and record.scope_type == ScopeType.ENSEMBLE.value:
            buffer = [record]
            continue
        if buffer is None:
            continue
        if record.is_close and record.scope_type == ScopeType.ENSEMBLE.value:
            decoded = decode_ensemble_scope(buffer, default_rate=result.sample_rate or None)
            buffer = None
            if decoded is None:
                continue
            ensemble, patterns, label = decoded
            result.ensembles.append(ensemble)
            result.patterns.append(patterns)
            result.labels.append(label)
            continue
        buffer.append(record)
    return result


def run_clips_via_river(
    pipeline, clips: Sequence[AcousticClip], record_size: int = 4096
) -> PipelineResult:
    """Convenience: stream clips through the compiled river pipeline.

    ``pipeline`` is an :class:`~repro.pipeline.builder.AcousticPipeline` or a
    :class:`~repro.pipeline.builder.BuiltPipeline`; each clip is chunked into
    ``record_size`` audio records exactly as a station uplink would deliver
    it.  Returns the combined result over all clips.
    """
    river = pipeline.to_river()
    source = ClipSource(list(clips), record_size=record_size)
    outputs = river.run_source(source)
    rate = int(clips[0].sample_rate) if clips else None
    return collect_result(outputs, sample_rate=rate)
