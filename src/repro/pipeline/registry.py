"""Stage registry: a name → factory plugin mechanism.

Stages are registered under short names so pipelines can be assembled from
configuration (``AcousticPipeline().stage("extract", config=...)``) and so
downstream projects can plug their own stages into the same builder without
touching this package:

    from repro.pipeline import STAGES, Stage

    @STAGES.register("denoise")
    class DenoiseStage(Stage):
        ...

The default registry (:data:`STAGES`) ships with the built-in acoustic
stages; independent registries can be created for isolated plugin sets.
"""

from __future__ import annotations

from typing import Callable, Iterator

from .stages import Stage

__all__ = ["StageRegistry", "STAGES"]


class StageRegistry:
    """A mapping from stage names to stage factories."""

    def __init__(self) -> None:
        self._factories: dict[str, Callable[..., Stage]] = {}

    def register(
        self, name: str, factory: Callable[..., Stage] | None = None
    ) -> Callable[..., Stage] | Callable[[Callable[..., Stage]], Callable[..., Stage]]:
        """Register ``factory`` under ``name`` (usable as a decorator).

        Re-registering a name replaces the previous factory, which lets
        applications override a built-in stage wholesale.
        """
        if not name or not isinstance(name, str):
            raise ValueError(f"stage name must be a non-empty string, got {name!r}")

        if factory is None:

            def decorator(fn: Callable[..., Stage]) -> Callable[..., Stage]:
                self._factories[name] = fn
                return fn

            return decorator

        self._factories[name] = factory
        return factory

    def factory(self, name: str) -> Callable[..., Stage]:
        """The factory registered under ``name``."""
        try:
            return self._factories[name]
        except KeyError:
            known = ", ".join(sorted(self._factories)) or "<none>"
            raise KeyError(f"no stage registered as {name!r}; known stages: {known}") from None

    def create(self, name: str, /, **kwargs) -> Stage:
        """Instantiate the stage registered under ``name``."""
        stage = self.factory(name)(**kwargs)
        if not isinstance(stage, Stage):
            raise TypeError(
                f"factory for {name!r} returned {type(stage).__name__}, expected a Stage"
            )
        return stage

    def names(self) -> list[str]:
        """Registered stage names, sorted."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._factories)


#: The default registry holding the built-in acoustic stages.
STAGES = StageRegistry()


def _store_stage_factory(
    path=None,
    writer=None,
    backend: str = "auto",
    recording: str | None = None,
    recording_prefix: str = "rec-",
    station: str = "",
    flush_values: int = 65_536,
) -> Stage:
    """Lazy factory for the ``"store"`` stage (mirrors the real signature so
    :meth:`AcousticPipeline.instantiate` sees which overrides it accepts,
    without importing :mod:`repro.store` until a store stage is used)."""
    from ..store.stage import StoreWriterStage

    return StoreWriterStage(
        path=path,
        writer=writer,
        backend=backend,
        recording=recording,
        recording_prefix=recording_prefix,
        station=station,
        flush_values=flush_values,
    )


def _register_builtins() -> None:
    from .stages import ClassifyStage, ExtractStage, FeatureStage

    STAGES.register("extract", ExtractStage)
    STAGES.register("features", FeatureStage)
    STAGES.register("classify", ClassifyStage)
    STAGES.register("store", _store_stage_factory)


_register_builtins()
