"""Typed events and result objects of the unified pipeline.

Stages communicate through small typed *events*: the extract stage turns
:class:`SignalChunk` inputs into :class:`EnsembleEvent` outputs, the feature
stage upgrades those to :class:`FeaturesEvent`, and the classify stage to
:class:`ClassifiedEvent`.  Every event carries the full lineage of the
ensemble it describes, so downstream consumers (including the Dynamic River
adapter) never need side channels.

:class:`PipelineResult` collects the terminal events of a run into the
per-ensemble views most callers want (ensembles, patterns, labels) plus the
anomaly-score and trigger traces when the extract stage kept them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

import numpy as np

from ..core.cutter import Ensemble
from ..synth.clips import AcousticClip

__all__ = [
    "PipelineEvent",
    "SignalChunk",
    "EnsembleEvent",
    "FeaturesEvent",
    "ClassifiedEvent",
    "PipelineResult",
]


class PipelineEvent:
    """Base class of everything that flows between pipeline stages."""

    __slots__ = ()


@dataclass(frozen=True)
class SignalChunk(PipelineEvent):
    """One chunk of raw audio entering the pipeline."""

    samples: np.ndarray
    sample_rate: int
    #: Absolute sample offset of this chunk within the stream.
    offset: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "samples", np.asarray(self.samples, dtype=float).ravel()
        )


@dataclass(frozen=True)
class EnsembleEvent(PipelineEvent):
    """An ensemble completed by the extract stage."""

    ensemble: Ensemble

    @property
    def patterns(self) -> tuple[np.ndarray, ...]:
        return ()

    @property
    def label(self) -> Hashable | None:
        return None


@dataclass(frozen=True)
class FeaturesEvent(PipelineEvent):
    """An ensemble plus its spectro-temporal patterns."""

    ensemble: Ensemble
    patterns: tuple[np.ndarray, ...]

    @property
    def label(self) -> Hashable | None:
        return None


@dataclass(frozen=True)
class ClassifiedEvent(PipelineEvent):
    """An ensemble with patterns and the classifier's verdict."""

    ensemble: Ensemble
    patterns: tuple[np.ndarray, ...]
    #: Majority-vote label, or None when the ensemble yielded no patterns.
    label: Hashable | None
    #: Per-label vote counts behind the verdict.
    votes: dict = field(default_factory=dict)


#: Event types that terminate an ensemble's journey through the stages.
ENSEMBLE_EVENTS = (EnsembleEvent, FeaturesEvent, ClassifiedEvent)


@dataclass
class PipelineResult:
    """Everything produced by one pipeline run.

    The per-ensemble lists (``ensembles``, ``patterns``, ``labels``) are
    index-aligned.  ``patterns`` entries are empty tuples when the pipeline
    has no feature stage; ``labels`` entries are ``None`` when it has no
    classify stage (or the ensemble produced no patterns to vote with).
    """

    sample_rate: int
    total_samples: int
    ensembles: list[Ensemble] = field(default_factory=list)
    patterns: list[tuple[np.ndarray, ...]] = field(default_factory=list)
    labels: list[Hashable | None] = field(default_factory=list)
    #: Smoothed anomaly-score and trigger traces (None when not kept).
    anomaly_scores: np.ndarray | None = None
    trigger: np.ndarray | None = None
    #: The raw terminal events, in completion order.
    events: list[PipelineEvent] = field(default_factory=list)

    @classmethod
    def from_events(
        cls,
        events: Iterable[PipelineEvent],
        sample_rate: int,
        total_samples: int,
        anomaly_scores: np.ndarray | None = None,
        trigger: np.ndarray | None = None,
    ) -> "PipelineResult":
        """Assemble a result from a stream of terminal events."""
        result = cls(
            sample_rate=sample_rate,
            total_samples=total_samples,
            anomaly_scores=anomaly_scores,
            trigger=trigger,
        )
        for event in events:
            if not isinstance(event, ENSEMBLE_EVENTS):
                continue
            result.events.append(event)
            result.ensembles.append(event.ensemble)
            result.patterns.append(tuple(event.patterns))
            result.labels.append(event.label)
        return result

    # -- reduction accounting (the paper's 80.6 % claim) ---------------------

    @property
    def retained_samples(self) -> int:
        """Number of samples contained in the extracted ensembles."""
        return sum(e.length for e in self.ensembles)

    @property
    def reduction(self) -> float:
        """Fraction of the original data removed by extraction."""
        if self.total_samples == 0:
            return 0.0
        return 1.0 - self.retained_samples / self.total_samples

    # -- ground-truth helpers ------------------------------------------------

    def ground_truth(
        self, clip: AcousticClip, min_overlap: float = 0.25
    ) -> list[str | None]:
        """Ground-truth species per ensemble (None where nothing overlaps).

        Aligned with ``ensembles``: entry ``i`` is the species of the
        vocalisation that overlaps ensemble ``i`` the most, provided the
        overlap covers at least ``min_overlap`` of the ensemble.
        """
        truths: list[str | None] = []
        for ensemble in self.ensembles:
            best_species: str | None = None
            best_overlap = 0
            for voc in clip.vocalizations:
                overlap = min(ensemble.end, voc.end) - max(ensemble.start, voc.start)
                if overlap > best_overlap:
                    best_overlap = overlap
                    best_species = voc.species
            if (
                best_species is not None
                and ensemble.length > 0
                and best_overlap >= min_overlap * ensemble.length
            ):
                truths.append(best_species)
            else:
                truths.append(None)
        return truths

    def labelled(self, clip: AcousticClip, min_overlap: float = 0.25) -> list[Ensemble]:
        """Ensembles carrying their ground-truth labels (unmatched dropped)."""
        labelled: list[Ensemble] = []
        for ensemble, species in zip(self.ensembles, self.ground_truth(clip, min_overlap)):
            if species is not None:
                labelled.append(ensemble.with_label(species))
        return labelled
