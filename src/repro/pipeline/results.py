"""Typed events and result objects of the unified pipeline.

Stages communicate through small typed *events*: the extract stage turns
:class:`SignalChunk` inputs into :class:`EnsembleEvent` outputs, the feature
stage upgrades those to :class:`FeaturesEvent`, and the classify stage to
:class:`ClassifiedEvent`.  Every event carries the full lineage of the
ensemble it describes, so downstream consumers (including the Dynamic River
adapter) never need side channels.

:class:`PipelineResult` collects the terminal events of a run into the
per-ensemble views most callers want (ensembles, patterns, labels) plus the
anomaly-score and trigger traces when the extract stage kept them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

import numpy as np

from ..core.cutter import Ensemble
from ..synth.clips import AcousticClip

__all__ = [
    "PipelineEvent",
    "SignalChunk",
    "EnsembleEvent",
    "EnsembleFragmentEvent",
    "FeaturesEvent",
    "ClassifiedEvent",
    "PipelineResult",
    "ensemble_from_fragments",
]


def ensemble_from_fragments(
    parts: list[np.ndarray],
    start: int,
    end: int | None,
    sample_rate: int,
    label: str | None = None,
) -> Ensemble:
    """Reassemble fragment audio slices into an :class:`Ensemble`.

    The single reassembly rule shared by every fragment consumer (the
    feature stage's terminal event, result assembly and the river scope
    decoder), so the concatenation order and the ``end`` fallback cannot
    drift apart: when ``end`` is unknown it is derived from the reassembled
    length, which is exact because fragments tile the run contiguously.
    """
    if len(parts) == 1:
        samples = parts[0]
    elif parts:
        samples = np.concatenate(parts)
    else:
        samples = np.zeros(0)
    if end is None:
        end = start + int(samples.size)
    return Ensemble(
        samples=samples,
        start=int(start),
        end=int(end),
        sample_rate=int(sample_rate),
        label=label,
    )


class PipelineEvent:
    """Base class of everything that flows between pipeline stages."""

    __slots__ = ()


@dataclass(frozen=True)
class SignalChunk(PipelineEvent):
    """One chunk of raw audio entering the pipeline."""

    samples: np.ndarray
    sample_rate: int
    #: Absolute sample offset of this chunk within the stream.
    offset: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "samples", np.asarray(self.samples, dtype=float).ravel()
        )


@dataclass(frozen=True)
class EnsembleEvent(PipelineEvent):
    """An ensemble completed by the extract stage."""

    ensemble: Ensemble

    @property
    def patterns(self) -> tuple[np.ndarray, ...]:
        return ()

    @property
    def label(self) -> Hashable | None:
        return None


@dataclass(frozen=True)
class EnsembleFragmentEvent(PipelineEvent):
    """One step of an ensemble streamed as fragments while it is still open.

    Emitted by ``ExtractStage(emit="fragments")``: ``kind`` is ``"open"``
    (the trigger-high run reached ``min_duration``), ``"data"`` (a
    contiguous audio slice of the open ensemble) or ``"close"`` (the run
    ended at ``end``).  Fragment streams let downstream stages compute
    patterns with O(slice) memory instead of buffering the whole run.
    """

    kind: str
    #: Absolute index of the ensemble's first sample.
    start: int
    sample_rate: int
    #: The audio slice (``kind == "data"`` only).
    samples: np.ndarray | None = None
    #: Absolute index of ``samples[0]`` (``kind == "data"`` only).
    offset: int | None = None
    #: Absolute index one past the last sample (``kind == "close"`` only).
    end: int | None = None

    KINDS = ("open", "data", "close")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(
                f"kind must be one of {', '.join(self.KINDS)}; got {self.kind!r}"
            )


@dataclass(frozen=True)
class FeaturesEvent(PipelineEvent):
    """An ensemble plus its spectro-temporal patterns.

    On the fragment path the feature stage also emits *partial* feature
    events — one per pattern, as soon as the pattern's records exist, with
    ``ensemble`` still ``None`` because the ensemble is not closed yet.
    Terminal events (the ones result assembly and classification consume)
    always carry the ensemble.
    """

    ensemble: Ensemble | None
    patterns: tuple[np.ndarray, ...]

    @property
    def partial(self) -> bool:
        """True for a streamed per-pattern event of a still-open ensemble."""
        return self.ensemble is None

    @property
    def label(self) -> Hashable | None:
        return None


@dataclass(frozen=True)
class ClassifiedEvent(PipelineEvent):
    """An ensemble with patterns and the classifier's verdict."""

    ensemble: Ensemble
    patterns: tuple[np.ndarray, ...]
    #: Majority-vote label, or None when the ensemble yielded no patterns.
    label: Hashable | None
    #: Per-label vote counts behind the verdict.
    votes: dict = field(default_factory=dict)


#: Event types that terminate an ensemble's journey through the stages.
ENSEMBLE_EVENTS = (EnsembleEvent, FeaturesEvent, ClassifiedEvent)


@dataclass
class PipelineResult:
    """Everything produced by one pipeline run.

    The per-ensemble lists (``ensembles``, ``patterns``, ``labels``) are
    index-aligned.  ``patterns`` entries are empty tuples when the pipeline
    has no feature stage; ``labels`` entries are ``None`` when it has no
    classify stage (or the ensemble produced no patterns to vote with).
    """

    sample_rate: int
    total_samples: int
    ensembles: list[Ensemble] = field(default_factory=list)
    patterns: list[tuple[np.ndarray, ...]] = field(default_factory=list)
    labels: list[Hashable | None] = field(default_factory=list)
    #: Smoothed anomaly-score and trigger traces (None when not kept).
    anomaly_scores: np.ndarray | None = None
    trigger: np.ndarray | None = None
    #: Absolute stream index of ``anomaly_scores[0]`` / ``trigger[0]``: 0
    #: unless ``max_trace_samples`` evicted older chunks, in which case the
    #: traces are a stream suffix starting here (index a trace with
    #: ``ensemble.start - trace_offset``).
    trace_offset: int = 0
    #: Ensembles too short to yield a single pattern: the feature stage saw
    #: them but emitted zero patterns, so they carry no vote downstream.
    #: They still appear in ``ensembles``; this count lets experiment
    #: tables report them instead of losing them silently.
    short_ensembles: int = 0
    #: The raw terminal events, in completion order.
    events: list[PipelineEvent] = field(default_factory=list)

    @classmethod
    def from_events(
        cls,
        events: Iterable[PipelineEvent],
        sample_rate: int,
        total_samples: int,
        anomaly_scores: np.ndarray | None = None,
        trigger: np.ndarray | None = None,
    ) -> "PipelineResult":
        """Assemble a result from a stream of terminal events.

        Fragment streams are folded into per-ensemble rows here, where the
        full ensembles are wanted anyway: raw fragments (an extraction-only
        fragment pipeline) are reassembled into audio-carrying ensembles,
        and streamed partial per-pattern feature events are collected per
        open ensemble.  When a terminal whole-ensemble event arrives
        (``features(emit="ensembles")``, the default) it supersedes the
        collected partials — they are the same patterns — so nothing is
        double-counted; without one (``features(emit="patterns")``) the
        close marker becomes a row carrying the streamed patterns and the
        ensemble's boundaries (its audio was consumed upstream, so the
        ensemble shell has no samples).
        """
        result = cls(
            sample_rate=sample_rate,
            total_samples=total_samples,
            anomaly_scores=anomaly_scores,
            trigger=trigger,
        )
        fragment_parts: list[np.ndarray] = []
        partial_patterns: list[np.ndarray] = []
        open_seen = False
        terminal_seen = False
        for event in events:
            if isinstance(event, EnsembleFragmentEvent):
                if event.kind == "open":
                    fragment_parts = []
                    partial_patterns = []
                    open_seen, terminal_seen = True, False
                elif event.kind == "data" and event.samples is not None:
                    fragment_parts.append(event.samples)
                elif event.kind == "close" and open_seen and not terminal_seen:
                    ensemble = ensemble_from_fragments(
                        fragment_parts, event.start, event.end, event.sample_rate
                    )
                    if not fragment_parts and not partial_patterns:
                        # A fragment consumer ate the audio and completed
                        # zero patterns: the run was too short for a single
                        # pattern group.  Keep the (sample-less) row and
                        # count it, matching the buffered path exactly.
                        result.short_ensembles += 1
                    result.events.append(event)
                    result.ensembles.append(ensemble)
                    result.patterns.append(tuple(partial_patterns))
                    result.labels.append(None)
                if event.kind == "close":
                    fragment_parts = []
                    partial_patterns = []
                    open_seen = terminal_seen = False
                continue
            if not isinstance(event, ENSEMBLE_EVENTS):
                continue
            if event.ensemble is None:
                # A streamed per-pattern event of a still-open ensemble:
                # collect, in case no terminal event follows.
                partial_patterns.extend(event.patterns)
                continue
            # A terminal event re-carries every streamed pattern; remember
            # that so the trailing close marker does not duplicate the row.
            partial_patterns = []
            terminal_seen = True
            if isinstance(event, (FeaturesEvent, ClassifiedEvent)) and not event.patterns:
                result.short_ensembles += 1
            result.events.append(event)
            result.ensembles.append(event.ensemble)
            result.patterns.append(tuple(event.patterns))
            result.labels.append(event.label)
        return result

    # -- reduction accounting (the paper's 80.6 % claim) ---------------------

    @property
    def retained_samples(self) -> int:
        """Number of samples contained in the extracted ensembles."""
        return sum(e.length for e in self.ensembles)

    @property
    def reduction(self) -> float:
        """Fraction of the original data removed by extraction."""
        if self.total_samples == 0:
            return 0.0
        return 1.0 - self.retained_samples / self.total_samples

    # -- ground-truth helpers ------------------------------------------------

    def ground_truth(
        self, clip: AcousticClip, min_overlap: float = 0.25
    ) -> list[str | None]:
        """Ground-truth species per ensemble (None where nothing overlaps).

        Aligned with ``ensembles``: entry ``i`` is the species of the
        vocalisation that overlaps ensemble ``i`` the most, provided the
        overlap covers at least ``min_overlap`` of the ensemble.
        """
        truths: list[str | None] = []
        for ensemble in self.ensembles:
            best_species: str | None = None
            best_overlap = 0
            for voc in clip.vocalizations:
                overlap = min(ensemble.end, voc.end) - max(ensemble.start, voc.start)
                if overlap > best_overlap:
                    best_overlap = overlap
                    best_species = voc.species
            if (
                best_species is not None
                and ensemble.length > 0
                and best_overlap >= min_overlap * ensemble.length
            ):
                truths.append(best_species)
            else:
                truths.append(None)
        return truths

    def labelled(self, clip: AcousticClip, min_overlap: float = 0.25) -> list[Ensemble]:
        """Ensembles carrying their ground-truth labels (unmatched dropped)."""
        labelled: list[Ensemble] = []
        for ensemble, species in zip(self.ensembles, self.ground_truth(clip, min_overlap)):
            if species is not None:
                labelled.append(ensemble.with_label(species))
        return labelled
