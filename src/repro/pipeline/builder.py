"""The fluent :class:`AcousticPipeline` builder and its executable product.

One stage graph, many execution modes::

    pipe = (
        AcousticPipeline()
        .extract(FAST_EXTRACTION)
        .features(use_paa=True)
        .classify(meso)
        .build()
    )

    pipe.run(clip)                      # an AcousticClip
    pipe.run(samples, sample_rate=16000)  # a raw numpy array
    pipe.run("dawn_chorus.wav")         # a WAV file path
    pipe.run(chunks, sample_rate=16000)  # any iterator of chunks

    for event in pipe.extract_stream(chunks, sample_rate=16000):
        ...                              # incremental, unbounded streams

    river_pipeline = pipe.to_river()     # the same stages as Dynamic River
                                         # record operators

Batch execution is simply the streaming engine fed a single chunk, and the
streaming engine is chunk-invariant, so all modes agree on their output.
"""

from __future__ import annotations

import inspect
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..config import ExtractionConfig, FeatureConfig
from ..dsp.wav import WavClip, read_wav
from ..synth.clips import AcousticClip
from .registry import STAGES, StageRegistry
from .results import (
    EnsembleEvent,
    FeaturesEvent,
    PipelineEvent,
    PipelineResult,
    SignalChunk,
)
from .stages import ExtractStage, Stage

__all__ = ["AcousticPipeline", "BuiltPipeline", "PipelineBuildError"]


class PipelineBuildError(ValueError):
    """Raised when a pipeline specification cannot be assembled."""


class AcousticPipeline:
    """Fluent builder assembling a stage graph from registered stages."""

    def __init__(self, registry: StageRegistry | None = None) -> None:
        self.registry = registry or STAGES
        self._specs: list[tuple[str, dict]] = []

    # -- fluent stage declarations -------------------------------------------

    def extract(
        self,
        config: ExtractionConfig | None = None,
        *,
        hop: int = 16,
        normalization: str = "running",
        keep_traces: bool = True,
        max_trace_samples: int | None = None,
        emit: str = "ensembles",
    ) -> "AcousticPipeline":
        """Add the saxanomaly → trigger → cutter extraction stage.

        ``emit="fragments"`` streams each trigger-high run as incremental
        fragment events while it is still open (see
        :class:`~repro.pipeline.stages.ExtractStage`); ``max_trace_samples``
        bounds the kept score/trigger traces on unbounded streams.
        """
        return self.stage(
            "extract",
            config=config,
            hop=hop,
            normalization=normalization,
            keep_traces=keep_traces,
            max_trace_samples=max_trace_samples,
            emit=emit,
        )

    def features(
        self,
        config: FeatureConfig | None = None,
        *,
        use_paa: bool = False,
        normalize: str = "max",
        log_compress: bool = True,
        log_gain: float = 100.0,
        emit: str = "ensembles",
    ) -> "AcousticPipeline":
        """Add the spectro-temporal feature (pattern) stage.

        ``emit`` selects what happens at a fragment stream's close:
        ``"ensembles"`` (default) reassembles and emits the terminal
        whole-ensemble event exactly like the buffered path, while
        ``"patterns"`` keeps memory bounded by never reassembling (see
        :class:`~repro.pipeline.stages.FeatureStage`).
        """
        return self.stage(
            "features",
            config=config,
            use_paa=use_paa,
            normalize=normalize,
            log_compress=log_compress,
            log_gain=log_gain,
            emit=emit,
        )

    def classify(self, classifier) -> "AcousticPipeline":
        """Add per-ensemble majority-vote classification."""
        return self.stage("classify", classifier=classifier)

    def stage(self, name: str, /, **kwargs) -> "AcousticPipeline":
        """Append any registered stage by name (the plugin entry point)."""
        if name not in self.registry:
            known = ", ".join(self.registry.names()) or "<none>"
            raise PipelineBuildError(
                f"no stage registered as {name!r}; known stages: {known}"
            )
        self._specs.append((name, dict(kwargs)))
        return self

    # -- validation and assembly ---------------------------------------------

    @property
    def specs(self) -> list[tuple[str, dict]]:
        """The declared (name, kwargs) stage specifications, in order."""
        return [(name, dict(kwargs)) for name, kwargs in self._specs]

    def _validate(self) -> None:
        names = [name for name, _ in self._specs]
        if not names:
            raise PipelineBuildError(
                "empty pipeline: declare at least an extract stage"
            )
        for builtin in ("extract", "features", "classify"):
            if names.count(builtin) > 1:
                raise PipelineBuildError(f"duplicate {builtin!r} stage")
        if "extract" in names and names.index("extract") != 0:
            raise PipelineBuildError("the extract stage must come first")
        if "features" in names and "extract" not in names:
            raise PipelineBuildError("the features stage needs an extract stage first")
        if "classify" in names:
            if "features" not in names:
                raise PipelineBuildError(
                    "the classify stage needs a features stage before it"
                )
            if names.index("classify") < names.index("features"):
                raise PipelineBuildError("classify must come after features")
            kwargs = dict(self._specs)
            if (
                kwargs.get("extract", {}).get("emit") == "fragments"
                and kwargs.get("features", {}).get("emit") == "patterns"
            ):
                # Nothing would ever be classified: voting consumes terminal
                # whole-ensemble feature events, which this mode never emits.
                raise PipelineBuildError(
                    "features(emit='patterns') never reassembles an ensemble, "
                    "so classify would silently label nothing on a fragment "
                    "stream; use features(emit='ensembles') (the default) "
                    "with extract(emit='fragments')"
                )

    def instantiate(self, only=None, **overrides) -> list[Stage]:
        """Create fresh stage instances from the declared specs.

        ``overrides`` are merged into the kwargs of every stage whose
        factory accepts them by name (used by the Dynamic River adapter to
        disable trace accumulation on unbounded streams); explicitly
        declared kwargs always win.  ``only`` restricts instantiation to
        the given spec indices (in spec order) — the fan-out compiler uses
        it to build spare replicas of just the fanned stages instead of
        whole throwaway graphs.
        """
        self._validate()
        stages: list[Stage] = []
        for index, (name, kwargs) in enumerate(self._specs):
            if only is not None and index not in only:
                continue
            merged = dict(kwargs)
            accepted = self._accepted_parameters(self.registry.factory(name))
            for key, value in overrides.items():
                if key in merged:
                    continue
                if accepted is None or key in accepted:
                    merged[key] = value
            stages.append(self.registry.create(name, **merged))
        return stages

    @staticmethod
    def _accepted_parameters(factory) -> set[str] | None:
        """Keyword names ``factory`` accepts; None means "anything" (**kwargs)."""
        try:
            parameters = inspect.signature(factory).parameters
        except (TypeError, ValueError):
            return None
        if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()):
            return None
        return {
            name
            for name, p in parameters.items()
            if p.kind
            in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
        }

    def build(self) -> "BuiltPipeline":
        """Instantiate the stage graph into an executable pipeline."""
        return BuiltPipeline(self.instantiate(), spec=self)

    def run_corpus(
        self,
        corpus=None,
        *,
        backend: str = "serial",
        workers: int | None = None,
        sample_rate: int | None = None,
        store=None,
        from_store=None,
        recordings=None,
        ledger=None,
        ledger_config=None,
    ):
        """Run this spec over a corpus (see :meth:`BuiltPipeline.run_corpus`).

        The executor instantiates stages per worker from the spec, so no
        eager :meth:`build` is needed here — except for ``from_store=``,
        which replays stored ensembles through a built graph.
        """
        if from_store is not None:
            return self.build().run_corpus(
                corpus,
                backend=backend,
                workers=workers,
                sample_rate=sample_rate,
                store=store,
                from_store=from_store,
                recordings=recordings,
                ledger=ledger,
                ledger_config=ledger_config,
            )
        if ledger is not None:
            from ..jobs import run_corpus as run_ledgered

            return run_ledgered(
                self,
                corpus,
                ledger,
                backend=backend,
                workers=workers,
                sample_rate=sample_rate,
                store=store,
                recordings=recordings,
                config=ledger_config,
            )
        from .executor import CorpusExecutor

        return CorpusExecutor(self, backend=backend, workers=workers).run(
            corpus, sample_rate=sample_rate, store=store, recordings=recordings
        )

    def to_river(
        self,
        name: str = "acoustic-pipeline",
        fan_out: int | dict[str, int] = 1,
        partition: str = "station",
        store=None,
    ):
        """Compile the stage graph into a Dynamic River operator pipeline.

        ``fan_out`` > 1 compiles each per-ensemble stage (features,
        classify, plugins) into that many parallel replicas behind a
        deterministic partition/merge pair; ``partition`` chooses how
        ensembles are routed to replicas (``"station"`` keys on the
        recording station so each station's ensembles share an operator
        instance, ``"roundrobin"`` cycles).  The merged output is
        bit-identical to the linear ``fan_out=1`` graph — fan-out changes
        where work runs, never what it produces.
        """
        from .river_adapter import compile_to_river

        return compile_to_river(
            self, name=name, fan_out=fan_out, partition=partition, store=store
        )

    def deploy(self, clips, backend: str = "simulated", **kwargs):
        """Run ``clips`` through the compiled river graph on a real fabric.

        ``backend="simulated"`` steps the placed segments on cooperative
        in-process hosts; ``backend="process"`` launches one OS process per
        host wired with socket channels (see
        :func:`~repro.pipeline.river_adapter.deploy_clips_via_river` for the
        remaining keyword options).  Both return the same
        :class:`PipelineResult` a batch ``run()`` over the clips would.
        """
        from .river_adapter import deploy_clips_via_river

        return deploy_clips_via_river(self, clips, backend=backend, **kwargs)


class BuiltPipeline:
    """An executable stage graph (produced by :meth:`AcousticPipeline.build`)."""

    def __init__(self, stages: list[Stage], spec: AcousticPipeline | None = None) -> None:
        if not stages:
            raise PipelineBuildError("a built pipeline needs at least one stage")
        self.stages = list(stages)
        self.spec = spec
        self._store_run_counter = 0
        # Tell store stages whether a features stage precedes them, so the
        # stored n_patterns column can distinguish "no feature stage ran"
        # (-1) from "features ran and found nothing" (0) on fragment streams.
        seen_features = False
        for stage in self.stages:
            if getattr(stage, "expect_features", False) is None:
                stage.expect_features = seen_features
            if stage.name == "features":
                seen_features = True

    # -- introspection ---------------------------------------------------------

    def stage(self, name: str) -> Stage:
        """Look up a stage by its ``name`` attribute."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"no stage named {name!r} in this pipeline")

    @property
    def extract_stage(self) -> ExtractStage | None:
        first = self.stages[0]
        return first if isinstance(first, ExtractStage) else None

    @property
    def default_sample_rate(self) -> int:
        extract = self.extract_stage
        return extract.config.sample_rate if extract is not None else 22050

    def patterns_for(self, samples: np.ndarray) -> list[np.ndarray]:
        """Feature patterns for a raw sample array (reference songs etc.).

        Uses the pipeline's feature stage at the pipeline's sample rate, so
        training patterns and extracted patterns live in the same space.
        """
        stage = self.stage("features")
        if stage.sample_rate is None:
            stage.start(self.default_sample_rate)
        return stage.patterns_for(samples)

    def to_river(
        self,
        name: str = "acoustic-pipeline",
        fan_out: int | dict[str, int] = 1,
        partition: str = "station",
        store=None,
    ):
        """Compile this pipeline's stage graph for Dynamic River."""
        if self.spec is None:
            raise PipelineBuildError(
                "this pipeline was built without a spec; use AcousticPipeline.to_river"
            )
        return self.spec.to_river(
            name=name, fan_out=fan_out, partition=partition, store=store
        )

    def deploy(self, clips, backend: str = "simulated", **kwargs):
        """Deploy this pipeline's compiled graph on a fabric (see
        :meth:`AcousticPipeline.deploy`)."""
        if self.spec is None:
            raise PipelineBuildError(
                "this pipeline was built without a spec; use AcousticPipeline.deploy"
            )
        return self.spec.deploy(clips, backend=backend, **kwargs)

    # -- execution -------------------------------------------------------------

    def run(
        self,
        source,
        sample_rate: int | None = None,
        *,
        store=None,
        recording: str | None = None,
        station: str | None = None,
    ) -> PipelineResult:
        """Run the pipeline to completion and collect a :class:`PipelineResult`.

        ``source`` may be an :class:`AcousticClip`, a raw sample array, a WAV
        file path, a decoded :class:`WavClip` or any iterable of sample
        chunks.  ``sample_rate`` overrides the rate for arrays and chunk
        iterables (clips and WAV files carry their own).

        ``store`` persists the result into a feature store — a directory
        path or an open :class:`~repro.store.StoreWriter` — under
        ``recording`` (auto-numbered when omitted); ``station`` defaults to
        the source's ``station_id`` when it has one.
        """
        chunks, rate = self._coerce_source(source, sample_rate)
        events = list(self._execute(chunks, rate))
        extract = self.extract_stage
        scores, trigger = extract.traces() if extract is not None else (None, None)
        total = extract.samples_seen if extract is not None else 0
        result = PipelineResult.from_events(
            events,
            sample_rate=rate,
            total_samples=total,
            anomaly_scores=scores,
            trigger=trigger,
        )
        if extract is not None:
            result.trace_offset = extract.trace_offset
        if store is not None:
            self._persist_result(store, result, source, recording, station)
        return result

    def _persist_result(self, store, result, source, recording, station) -> None:
        from ..store.writer import coerce_writer

        writer, owned = coerce_writer(store)
        try:
            name = recording
            if name is None:
                while True:
                    name = f"rec-{self._store_run_counter:05d}"
                    self._store_run_counter += 1
                    if not writer.has_recording(name):
                        break
            if station is None:
                station = str(getattr(source, "station_id", "") or "")
            features = any(stage.name == "features" for stage in self.stages)
            writer.write_result(name, result, station=station, features=features)
            writer.flush()
        finally:
            if owned:
                writer.close()

    def run_from_store(
        self, store, recording: str, sample_rate: int | None = None
    ) -> PipelineResult:
        """Replay a stored recording through this pipeline's post-extraction
        stages, skipping DFT→PAA→SAX extraction entirely.

        Stored rows enter the graph as the events the extract (and, when
        patterns were stored, feature) stage would have produced, so the
        result is bit-identical to running the raw audio — locked by the
        parity tests in ``tests/test_store.py``.  Extraction traces are not
        stored, so ``anomaly_scores``/``trigger`` are ``None`` here.
        """
        from ..store.reader import coerce_reader

        reader = coerce_reader(store)
        info = reader.recording_info(recording)
        rate = int(sample_rate or info.sample_rate or self.default_sample_rate)
        stages = [
            stage
            for stage in self.stages
            if not isinstance(stage, ExtractStage) and stage.name != "store"
        ]
        for stage in stages:
            stage.reset()
            stage.start(rate)
        events: list[PipelineEvent] = []
        for stored in reader.iter_ensembles(recording=recording):
            if stored.n_patterns >= 0:
                batch: list[PipelineEvent] = [
                    FeaturesEvent(ensemble=stored.ensemble, patterns=stored.patterns)
                ]
            else:
                batch = [EnsembleEvent(ensemble=stored.ensemble)]
            for stage in stages:
                moved: list[PipelineEvent] = []
                for event in batch:
                    moved.extend(stage.process(event))
                batch = moved
            events.extend(batch)
        pending: list[PipelineEvent] = []
        for stage in stages:
            moved = []
            for event in pending:
                moved.extend(stage.process(event))
            moved.extend(stage.flush())
            pending = moved
        events.extend(pending)
        return PipelineResult.from_events(
            events, sample_rate=rate, total_samples=info.total_samples
        )

    def run_corpus(
        self,
        corpus=None,
        *,
        backend: str = "serial",
        workers: int | None = None,
        sample_rate: int | None = None,
        store=None,
        from_store=None,
        recordings=None,
        ledger=None,
        ledger_config=None,
    ) -> list[PipelineResult]:
        """Run the pipeline over every item of a corpus, in corpus order.

        ``corpus`` is a sequence of independent sources — clips, raw sample
        arrays, WAV paths — or an object with a ``clips`` attribute such as
        :class:`~repro.synth.dataset.ClipCorpus`.  ``backend`` selects how
        items are executed: ``"serial"`` (the reference), ``"thread"`` or
        ``"process"``; all backends return bit-identical results (see
        :class:`~repro.pipeline.executor.CorpusExecutor`).

        ``store`` persists every result into a feature store as it
        completes; ``from_store`` replaces the corpus entirely, replaying
        the named ``recordings`` (default: all of them, in store order)
        through :meth:`run_from_store` instead of re-extracting.

        ``ledger`` (a file path or a live :class:`repro.jobs.Ledger`)
        makes the run durable: every item is tracked through a job ledger,
        failures retry with backoff and quarantine instead of aborting,
        and a killed run resumes where it stopped — with ``store=``, items
        persisted before the crash are recovered from the store rather
        than re-extracted.  Quarantined items return as ``None`` in their
        corpus positions (see :func:`repro.jobs.run_corpus`).
        ``ledger_config`` (a :class:`repro.jobs.LedgerConfig`) sets the
        retry policy when the ledger file is first created; an existing
        ledger keeps the policy it was created with.
        """
        if ledger is not None:
            if from_store is not None:
                raise PipelineBuildError(
                    "ledger= tracks extraction work; a from_store= replay "
                    "re-reads already-persisted rows, so there is nothing "
                    "durable to ledger — pass one or the other"
                )
            from ..jobs import run_corpus as run_ledgered

            return run_ledgered(
                self,
                corpus,
                ledger,
                backend=backend,
                workers=workers,
                sample_rate=sample_rate,
                store=store,
                recordings=recordings,
                config=ledger_config,
            )
        if from_store is not None:
            if corpus is not None:
                raise PipelineBuildError(
                    "pass either a corpus or from_store=, not both"
                )
            from ..store.reader import coerce_reader
            from ..store.writer import StoreError, coerce_writer

            reader = coerce_reader(from_store)
            names = list(recordings) if recordings is not None else reader.recordings()
            if store is None:
                return [
                    self.run_from_store(reader, name, sample_rate=sample_rate)
                    for name in names
                ]
            # Read → enrich → persist sweep: replay each recording and write
            # the enriched result (e.g. patterns, labels) to a second store.
            writer, owned = coerce_writer(store)
            try:
                if writer.path.resolve() == reader.path.resolve():
                    raise StoreError(
                        "from_store= and store= point at the same store; "
                        "appending a sweep's output onto its own input would "
                        "duplicate every ensemble row — write to a new path"
                    )
                results = []
                for name in names:
                    result = self.run_from_store(reader, name, sample_rate=sample_rate)
                    info = reader.recording_info(name)
                    writer.write_result(name, result, station=info.station)
                    results.append(result)
                writer.flush()
            finally:
                if owned:
                    writer.close()
            return results
        from .executor import CorpusExecutor

        return CorpusExecutor(self, backend=backend, workers=workers).run(
            corpus, sample_rate=sample_rate, store=store, recordings=recordings
        )

    def extract_stream(
        self, chunks: Iterable[np.ndarray], sample_rate: int | None = None
    ) -> Iterator[PipelineEvent]:
        """Process an (unbounded) chunk stream, yielding events as they complete.

        Stage state carries over across chunk boundaries, so an ensemble
        spanning several chunks is stitched together exactly as if the
        signal had been processed in one piece.  The stream is flushed when
        the iterator is exhausted.

        For genuinely unbounded streams build the pipeline with
        ``.extract(..., keep_traces=False)`` (or bound the traces with
        ``max_trace_samples=``) — trace accumulation is the only per-sample
        state that grows with stream length.  To also bound per-*ensemble*
        memory and latency, use ``.extract(..., emit="fragments")`` with
        ``.features(emit="patterns")``: patterns then stream out while each
        ensemble is still open.
        """
        rate = int(sample_rate or self.default_sample_rate)
        return self._execute(chunks, rate)

    # -- internals -------------------------------------------------------------

    def _coerce_source(
        self, source, sample_rate: int | None
    ) -> tuple[Iterable[np.ndarray], int]:
        if isinstance(source, AcousticClip):
            return [source.samples], int(source.sample_rate)
        if isinstance(source, WavClip):
            return [self._mono(source.samples)], int(source.sample_rate)
        if isinstance(source, (str, Path)):
            wav = read_wav(source)
            return [self._mono(wav.samples)], int(wav.sample_rate)
        if isinstance(source, np.ndarray):
            return [source], int(sample_rate or self.default_sample_rate)
        # Chunk sources such as repro.pipeline.sources.WavChunkStream carry
        # their own rate; an explicit sample_rate argument still wins.
        own_rate = getattr(source, "sample_rate", None)
        rate = int(sample_rate or own_rate or self.default_sample_rate)
        # Mappings and raw byte blobs are technically iterable but never a
        # chunk stream; rejecting them here gives a clear TypeError instead
        # of a numpy conversion error deep inside the first stage.
        if isinstance(source, Iterable) and not isinstance(
            source, (dict, bytes, bytearray)
        ):
            return source, rate
        raise TypeError(
            "source must be an AcousticClip, WavClip, numpy array, WAV path "
            f"or an iterable of chunks, got {type(source).__name__}"
        )

    @staticmethod
    def _mono(samples: np.ndarray) -> np.ndarray:
        return samples if samples.ndim == 1 else samples[0]

    def _execute(
        self, chunks: Iterable[np.ndarray], sample_rate: int
    ) -> Iterator[PipelineEvent]:
        for stage in self.stages:
            stage.reset()
            stage.start(sample_rate)
        offset = 0
        for chunk in chunks:
            arr = np.asarray(chunk, dtype=float).ravel()
            events: list[PipelineEvent] = [
                SignalChunk(samples=arr, sample_rate=sample_rate, offset=offset)
            ]
            offset += arr.size
            for stage in self.stages:
                batch: list[PipelineEvent] = []
                for event in events:
                    batch.extend(stage.process(event))
                events = batch
            yield from events
        # Stages downstream of extract never see SignalChunks (extract
        # consumes them), so observers that account stream length — the
        # store stage writes it as the recording's total_samples — get the
        # final offset pushed to them before their flush runs.
        for stage in self.stages:
            observe = getattr(stage, "observe_stream_end", None)
            if observe is not None:
                observe(offset)
        # End of stream: flush each stage once, pushing its flushed events
        # through the stages downstream of it (single pass, like
        # repro.river.Pipeline.flush).
        pending: list[PipelineEvent] = []
        for stage in self.stages:
            moved: list[PipelineEvent] = []
            for event in pending:
                moved.extend(stage.process(event))
            moved.extend(stage.flush())
            pending = moved
        yield from pending
