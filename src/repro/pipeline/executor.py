"""Parallel execution of a stage graph over a corpus of clips.

The :class:`CorpusExecutor` runs a built pipeline over many independent
sources (clips, raw arrays, WAV paths) with pluggable backends:

* ``"serial"`` — one pipeline instance, items processed in order (the
  reference semantics every other backend must match bit-for-bit);
* ``"thread"`` — a thread pool; each worker thread instantiates its own
  stage graph from the pipeline's spec, so stage state is never shared;
* ``"process"`` — a process pool; the pipeline *spec* (stage names +
  kwargs, which the registry model keeps serialisable-by-construction) is
  pickled once, each worker re-instantiates the stages, and results are
  pickled back.

Results are always returned in corpus order regardless of completion
order, so ``run_corpus(backend="process", workers=8)`` is a drop-in
replacement for a serial loop.  Per-item failures are wrapped in
:class:`CorpusExecutionError` carrying the failing item's index and a
description of its source; worker errors are caught inside the worker and
shipped back as data, so a raising stage can never deadlock the pool.

The classify stage holds a live classifier object.  Thread workers share
it (MESO queries are read-only apart from timing counters); process
workers each receive a pickled copy, so classifier ``stats`` accumulated
in workers are not reflected in the parent's instance.
"""

from __future__ import annotations

import os
import pickle
import threading
import traceback
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from pathlib import Path

import numpy as np

from .builder import AcousticPipeline, BuiltPipeline, PipelineBuildError
from .results import PipelineResult

__all__ = ["CorpusExecutor", "CorpusExecutionError", "BACKENDS"]

#: The recognised execution backends, in increasing order of isolation.
BACKENDS = ("serial", "thread", "process")


class CorpusExecutionError(RuntimeError):
    """A pipeline stage raised while processing one item of a corpus.

    ``index`` is the position of the failing item within the corpus and
    ``source`` a short description of it (the WAV path, the clip's station
    id, ...).  ``worker_traceback`` carries the traceback formatted inside
    a process worker, where the original exception object may not survive
    pickling.  ``completed`` lists the corpus indices whose results had
    been collected — and persisted, when a ``store=`` was given — before
    the failure, so callers can resume from where the run stopped instead
    of redoing everything.

    The ``completed`` contract is strict on every backend: an index is
    appended only *after* its ``store=`` persist call returned, so a
    persist failure (full disk, bad shard) never reports the item it was
    persisting as completed.  Persist failures are themselves wrapped in
    this exception with ``index``/``source``/``completed`` intact, so the
    resume seed survives store errors as well as pipeline errors.  The
    durable job layer built on top of this contract lives in
    :mod:`repro.jobs`.
    """

    def __init__(
        self,
        message: str,
        index: int | None = None,
        source: str | None = None,
        worker_traceback: str | None = None,
        completed: tuple[int, ...] = (),
    ) -> None:
        super().__init__(message)
        self.index = index
        self.source = source
        self.worker_traceback = worker_traceback
        self.completed = tuple(completed)


def describe_source(item) -> str:
    """A short human-readable description of one corpus item."""
    if isinstance(item, (str, Path)):
        return str(item)
    name = type(item).__name__
    station = getattr(item, "station_id", None)
    if station:
        return f"{name}(station_id={station!r})"
    # File-backed chunk streams (e.g. WavChunkStream) identify by their path.
    path = getattr(item, "path", None)
    if isinstance(path, (str, Path)):
        return f"{name}({path})"
    samples = getattr(item, "samples", item if isinstance(item, np.ndarray) else None)
    if isinstance(samples, np.ndarray):
        return f"{name}[{samples.size} samples]"
    return name


# -- process-backend worker plumbing ------------------------------------------
#
# The worker builds its pipeline once per process (initializer) and reuses
# it for every item; stages reset themselves at the start of each run.
# Errors are returned as data, never raised, so the pool cannot be broken
# by an exception that fails to pickle.

_WORKER_STATE: dict = {}


def _worker_init(payload: bytes) -> None:
    _WORKER_STATE["pipeline"] = pickle.loads(payload).build()


def _worker_run(index: int, item, sample_rate: int | None):
    try:
        result = _WORKER_STATE["pipeline"].run(item, sample_rate=sample_rate)
        return index, result, None
    except BaseException as exc:  # noqa: BLE001 - shipped back, re-raised in parent
        return index, None, (f"{type(exc).__name__}: {exc}", traceback.format_exc())


class CorpusExecutor:
    """Run a built stage graph over a corpus with a pluggable backend."""

    def __init__(
        self,
        pipeline: AcousticPipeline | BuiltPipeline,
        backend: str = "serial",
        workers: int | None = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {', '.join(BACKENDS)}; got {backend!r}"
            )
        if isinstance(pipeline, AcousticPipeline):
            self.builder: AcousticPipeline | None = pipeline
            self._pipeline: BuiltPipeline | None = None
        elif isinstance(pipeline, BuiltPipeline):
            self.builder = pipeline.spec
            self._pipeline = pipeline
        else:
            raise TypeError(
                "pipeline must be an AcousticPipeline or BuiltPipeline, "
                f"got {type(pipeline).__name__}"
            )
        if backend != "serial" and self.builder is None:
            raise PipelineBuildError(
                f"the {backend!r} backend re-instantiates stages from the "
                "pipeline spec, but this pipeline was built without one; "
                "build it via AcousticPipeline.build()"
            )
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.backend = backend
        self.workers = workers or (1 if backend == "serial" else (os.cpu_count() or 1))

    # -- public API -----------------------------------------------------------

    def run(
        self,
        corpus,
        sample_rate: int | None = None,
        store=None,
        recordings=None,
    ) -> list[PipelineResult]:
        """Run the pipeline over every item of ``corpus``, in corpus order.

        ``corpus`` is a sequence of anything :meth:`BuiltPipeline.run`
        accepts as a single source (clips, arrays, WAV paths), or an object
        with a ``clips`` attribute such as
        :class:`~repro.synth.dataset.ClipCorpus`.

        ``store`` persists each result into a feature store (a directory
        path or an open :class:`~repro.store.StoreWriter`) as soon as it is
        collected, under ``recordings`` names (default ``rec-00000`` …);
        results are collected in corpus order on every backend, so a
        failure leaves exactly the items in
        :attr:`CorpusExecutionError.completed` persisted.
        """
        items = self._coerce_corpus(corpus)
        if self.backend != "serial" and self._has_stage("store"):
            raise PipelineBuildError(
                "a 'store' stage appends through a single writer, which the "
                f"{self.backend!r} backend would duplicate across workers "
                "(concurrent writers corrupt the manifest); run store-stage "
                "pipelines with backend='serial', or drop the stage and pass "
                "store= to run_corpus() — results are then persisted in the "
                "parent as they are collected"
            )
        names = None
        if store is not None:
            names = self._recording_names(items, recordings)
        if not items:
            return []
        if self.backend == "serial":
            return self._run_serial(items, sample_rate, store, names)
        if self.backend == "thread":
            return self._run_thread(items, sample_rate, store, names)
        return self._run_process(items, sample_rate, store, names)

    # -- backends -------------------------------------------------------------

    def _run_serial(
        self, items: list, sample_rate: int | None, store=None, names=None
    ) -> list[PipelineResult]:
        pipeline = self._pipeline or self.builder.build()
        writer, owned = self._open_store(store)
        features = self._has_stage("features")
        results: list[PipelineResult] = []
        completed: list[int] = []
        try:
            for index, item in enumerate(items):
                try:
                    result = self._run_one(pipeline, index, item, sample_rate)
                except CorpusExecutionError as exc:
                    exc.completed = tuple(completed)
                    raise
                if writer is not None:
                    self._persist_checked(
                        writer, names[index], item, result, features, index, completed
                    )
                results.append(result)
                completed.append(index)
        finally:
            self._close_store(writer, owned)
        return results

    def _run_thread(
        self, items: list, sample_rate: int | None, store=None, names=None
    ) -> list[PipelineResult]:
        # One stage graph per worker thread: stages are stateful, so they
        # must never be shared, but rebuilding per item would waste work.
        local = threading.local()

        def task(index: int, item) -> PipelineResult:
            pipeline = getattr(local, "pipeline", None)
            if pipeline is None:
                pipeline = self.builder.build()
                local.pipeline = pipeline
            return self._run_one(pipeline, index, item, sample_rate)

        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            return self._gather(pool, task, items, store, names)

    def _run_process(
        self, items: list, sample_rate: int | None, store=None, names=None
    ) -> list[PipelineResult]:
        try:
            payload = pickle.dumps(self.builder)
        except Exception as exc:
            raise CorpusExecutionError(
                "the process backend pickles the pipeline spec to the "
                f"workers, but this spec is not picklable: {exc}"
            ) from exc
        workers = min(self.workers, len(items))
        writer, owned = self._open_store(store)
        features = self._has_stage("features")
        try:
            with ProcessPoolExecutor(
                max_workers=workers, initializer=_worker_init, initargs=(payload,)
            ) as pool:
                futures = [
                    pool.submit(_worker_run, index, item, sample_rate)
                    for index, item in enumerate(items)
                ]
                results: list[PipelineResult | None] = [None] * len(items)
                completed: list[int] = []
                for position, future in enumerate(futures):
                    try:
                        index, result, error = future.result()
                    except Exception as exc:
                        # Worker-side stage errors come back as data; anything
                        # raised here is pool infrastructure — most commonly an
                        # unpicklable corpus item, whose error lands on exactly
                        # this future.  Honour the index/source contract anyway.
                        source = describe_source(items[position])
                        raise CorpusExecutionError(
                            f"pipeline failed on corpus item {position} ({source}): "
                            f"{type(exc).__name__}: {exc}",
                            index=position,
                            source=source,
                            completed=tuple(completed),
                        ) from exc
                    if error is not None:
                        message, worker_tb = error
                        source = describe_source(items[index])
                        raise CorpusExecutionError(
                            f"pipeline failed on corpus item {index} ({source}): "
                            f"{message}\n--- worker traceback ---\n{worker_tb}",
                            index=index,
                            source=source,
                            worker_traceback=worker_tb,
                            completed=tuple(completed),
                        )
                    results[index] = result
                    # Persist *before* recording completion: a failing
                    # persist must not leave its index in the resume seed.
                    if writer is not None:
                        self._persist_checked(
                            writer, names[index], items[index], result, features, index, completed
                        )
                    completed.append(index)
        finally:
            self._close_store(writer, owned)
        return results  # type: ignore[return-value]

    # -- shared helpers -------------------------------------------------------

    def _run_one(
        self, pipeline: BuiltPipeline, index: int, item, sample_rate: int | None
    ) -> PipelineResult:
        try:
            return pipeline.run(item, sample_rate=sample_rate)
        except CorpusExecutionError:
            raise
        except Exception as exc:
            source = describe_source(item)
            raise CorpusExecutionError(
                f"pipeline failed on corpus item {index} ({source}): "
                f"{type(exc).__name__}: {exc}",
                index=index,
                source=source,
            ) from exc

    def _gather(
        self, pool: Executor, task, items: list, store=None, names=None
    ) -> list[PipelineResult]:
        futures = [pool.submit(task, index, item) for index, item in enumerate(items)]
        # Collect in submission (= corpus) order; the first failure wins and
        # the context manager drains the rest on exit.
        writer, owned = self._open_store(store)
        features = self._has_stage("features")
        results: list[PipelineResult] = []
        # Explicit per-item completion list, same semantics as the process
        # backend: an index enters `completed` only once its result is
        # collected *and* persisted, never inferred from a prefix range.
        completed: list[int] = []
        try:
            for position, future in enumerate(futures):
                try:
                    result = future.result()
                except CorpusExecutionError as exc:
                    exc.completed = tuple(completed)
                    raise
                if writer is not None:
                    self._persist_checked(
                        writer, names[position], items[position], result, features, position, completed
                    )
                results.append(result)
                completed.append(position)
        finally:
            self._close_store(writer, owned)
        return results

    # -- store plumbing -------------------------------------------------------

    def _has_stage(self, name: str) -> bool:
        if self.builder is not None:
            return any(spec_name == name for spec_name, _ in self.builder.specs)
        return any(stage.name == name for stage in self._pipeline.stages)

    @staticmethod
    def _recording_names(items: list, recordings) -> list[str]:
        if recordings is None:
            return [f"rec-{index:05d}" for index in range(len(items))]
        names = [str(name) for name in recordings]
        if len(names) != len(items):
            raise ValueError(
                f"recordings names {len(names)} must match corpus length {len(items)}"
            )
        return names

    @staticmethod
    def _open_store(store):
        if store is None:
            return None, False
        from ..store.writer import coerce_writer

        return coerce_writer(store)

    @staticmethod
    def _close_store(writer, owned: bool) -> None:
        if writer is None:
            return
        if owned:
            writer.close()
        else:
            writer.flush()

    @staticmethod
    def _persist(writer, name: str, item, result, features: bool) -> None:
        station = str(getattr(item, "station_id", "") or "")
        writer.write_result(name, result, station=station, features=features)

    def _persist_checked(
        self, writer, name: str, item, result, features: bool, index: int, completed: list[int]
    ) -> None:
        """Persist one result, wrapping store errors with the resume contract.

        A raw persist failure (full disk, bad shard) would otherwise escape
        without ``index``/``source``/``completed``, losing the resume seed
        exactly when it matters most.
        """
        try:
            self._persist(writer, name, item, result, features)
        except Exception as exc:
            source = describe_source(item)
            raise CorpusExecutionError(
                f"failed to persist corpus item {index} ({source}) to the "
                f"store: {type(exc).__name__}: {exc}",
                index=index,
                source=source,
                completed=tuple(completed),
            ) from exc

    @staticmethod
    def _coerce_corpus(corpus) -> list:
        clips = getattr(corpus, "clips", None)
        if clips is not None:
            return list(clips)
        if isinstance(corpus, (str, Path, np.ndarray)):
            raise TypeError(
                "corpus must be a sequence of sources, not a single source; "
                "wrap it in a list or call BuiltPipeline.run instead"
            )
        return list(corpus)
