"""The Stage protocol and the built-in acoustic stages.

A *stage* is a stateful event transformer with a tiny lifecycle:

* ``start(sample_rate)`` — called once per run before any event;
* ``process(event)`` — map one event to zero or more output events;
* ``flush()`` — emit whatever is still buffered at end of stream;
* ``reset()`` — drop all carried state so the stage can be reused.

Events a stage does not understand must pass through unchanged, which is
what makes stage graphs composable: inserting a new stage never breaks the
ones downstream.  The built-in stages cover the paper's chain — extraction
(saxanomaly → trigger → cutter), spectro-temporal features and MESO
classification — and register themselves in the default
:class:`~repro.pipeline.registry.StageRegistry` under ``"extract"``,
``"features"`` and ``"classify"``.
"""

from __future__ import annotations

import warnings
from collections import Counter, deque
from typing import Hashable

import numpy as np

from ..classify.features import IncrementalPatternBuilder, PatternExtractor
from ..classify.voting import majority_vote, predict_patterns
from ..config import ExtractionConfig, FeatureConfig
from ..core.anomaly import sax_anomaly_scores
from ..core.cutter import cut_ensembles
from ..core.trigger import AdaptiveTrigger
from .results import (
    ClassifiedEvent,
    EnsembleEvent,
    EnsembleFragmentEvent,
    FeaturesEvent,
    PipelineEvent,
    SignalChunk,
    ensemble_from_fragments,
)
from .streaming import (
    ChunkedAnomalyScorer,
    ChunkedCutter,
    FragmentClose,
    FragmentData,
    FragmentOpen,
)

__all__ = [
    "Stage",
    "BatchOnlyStageError",
    "ExtractStage",
    "FeatureStage",
    "ClassifyStage",
]


class BatchOnlyStageError(RuntimeError):
    """Raised when a batch-only stage configuration receives a chunked stream."""


class Stage:
    """Base class for pipeline stages (see module docstring for the contract)."""

    name = "stage"
    #: Whether the stage understands :class:`EnsembleFragmentEvent` streams.
    #: The Dynamic River adapter pumps fragment records straight through
    #: operators wrapping such stages instead of buffering whole scopes.
    consumes_fragments = False

    def start(self, sample_rate: int) -> None:
        """Prepare for a new run at the given sample rate."""

    def process(self, event: PipelineEvent) -> list[PipelineEvent]:
        """Transform one event; unknown events must be forwarded unchanged."""
        raise NotImplementedError

    def flush(self) -> list[PipelineEvent]:
        """Emit buffered events at end of stream (default: nothing)."""
        return []

    def reset(self) -> None:
        """Discard all carried state."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class ExtractStage(Stage):
    """saxanomaly → trigger → cutter: signal chunks in, ensembles out.

    Two normalisation modes are supported:

    * ``"running"`` (default) — causal prefix normalisation via the
      chunk-invariant streaming engine.  Results are identical no matter how
      the signal is chunked, which is what ``extract_stream()`` and the
      Dynamic River backend require.
    * ``"global"`` — the legacy batch semantics (Z-normalise against the
      whole clip), kept for exact reproduction of the paper experiments.
      Batch-only: feeding more than one chunk raises
      :class:`BatchOnlyStageError`.

    Two emission modes control what a completed trigger-high run becomes:

    * ``emit="ensembles"`` (default) — one buffered
      :class:`~repro.pipeline.results.EnsembleEvent` per completed run.
    * ``emit="fragments"`` — the run is streamed as
      :class:`~repro.pipeline.results.EnsembleFragmentEvent`\\ s *while it
      is still open* (open / data / close), so downstream stages can start
      computing patterns before the ensemble ends and per-ensemble peak
      memory stays O(chunk) instead of O(run length).  Requires
      ``normalization="running"``.

    Streaming caveat: with ``keep_traces=True`` the per-sample score and
    trigger traces grow with stream length — unbounded on unbounded
    streams.  Set ``max_trace_samples`` to keep only the most recent chunks
    (oldest chunks are dropped with a one-time warning; ``traces()`` then
    returns a suffix of the stream whose absolute start is
    :attr:`trace_offset`), or ``keep_traces=False`` to keep none.
    """

    name = "extract"

    EMIT_MODES = ("ensembles", "fragments")

    def __init__(
        self,
        config: ExtractionConfig | None = None,
        hop: int = 16,
        normalization: str = "running",
        keep_traces: bool = True,
        max_trace_samples: int | None = None,
        emit: str = "ensembles",
    ) -> None:
        if normalization not in ("running", "global"):
            raise ValueError(
                f"normalization must be 'running' or 'global', got {normalization!r}"
            )
        if emit not in self.EMIT_MODES:
            raise ValueError(
                f"emit must be one of {', '.join(self.EMIT_MODES)}; got {emit!r}"
            )
        if emit == "fragments" and normalization == "global":
            raise ValueError(
                "emit='fragments' streams ensembles incrementally and is "
                "incompatible with the batch-only normalization='global'"
            )
        if max_trace_samples is not None and max_trace_samples < 1:
            raise ValueError(
                f"max_trace_samples must be >= 1 or None, got {max_trace_samples}"
            )
        self.config = config or ExtractionConfig()
        self.hop = hop
        self.normalization = normalization
        self.keep_traces = keep_traces
        self.max_trace_samples = max_trace_samples
        self.emit = emit
        self.sample_rate = self.config.sample_rate
        #: One-time flag for the trace-bound warning (deliberately not
        #: cleared by reset(): one warning per stage object, not per clip).
        self._trace_bound_warned = False
        self.reset()

    # -- configuration helpers ----------------------------------------------

    @property
    def settle(self) -> int:
        """Trigger settle period (derived from the anomaly config when 0)."""
        settle = self.config.trigger.settle
        if settle == 0:
            anomaly = self.config.anomaly
            settle = anomaly.window + anomaly.lag_window + anomaly.smooth_window
        return settle

    @property
    def samples_seen(self) -> int:
        return self._samples_seen

    @property
    def trace_offset(self) -> int:
        """Absolute stream index of ``traces()[0][0]``.

        0 until ``max_trace_samples`` evicts the first chunk; afterwards the
        kept traces are a stream *suffix* starting here, so
        ``traces()[1][e.start - stage.trace_offset]`` stays aligned with an
        ensemble ``e``'s absolute positions.
        """
        return self._trace_offset

    def traces(self) -> tuple[np.ndarray | None, np.ndarray | None]:
        """(anomaly_scores, trigger) accumulated so far, or (None, None).

        With ``max_trace_samples`` set the arrays are a suffix of the
        stream beginning at :attr:`trace_offset`, not at sample 0.
        """
        if not self.keep_traces or not self._score_chunks:
            return None, None
        return np.concatenate(self._score_chunks), np.concatenate(self._trigger_chunks)

    # -- lifecycle -----------------------------------------------------------

    def start(self, sample_rate: int) -> None:
        self.sample_rate = int(sample_rate or self.config.sample_rate)
        self._cutter.sample_rate = self.sample_rate

    def reset(self) -> None:
        # Freeze the normalisation scale once the trigger's settle period is
        # over, so one loud event cannot re-scale the rest of the stream.
        self._scorer = ChunkedAnomalyScorer(
            self.config.anomaly, hop=self.hop, freeze_normalizer_after=self.settle
        )
        self._trigger = AdaptiveTrigger(self.config.trigger, settle=self.settle)
        self._cutter = ChunkedCutter(
            self.sample_rate, min_duration=self.config.trigger.min_duration
        )
        self._samples_seen = 0
        # Deques: the trace bound evicts from the front of the hot path.
        self._score_chunks: deque[np.ndarray] = deque()
        self._trigger_chunks: deque[np.ndarray] = deque()
        self._trace_samples = 0
        self._trace_offset = 0

    # -- processing ----------------------------------------------------------

    def _record_traces(self, scores: np.ndarray, trigger: np.ndarray) -> None:
        if not self.keep_traces:
            return
        self._score_chunks.append(scores)
        self._trigger_chunks.append(trigger)
        self._trace_samples += scores.size
        if self.max_trace_samples is None:
            return
        if self._trace_samples > self.max_trace_samples and not self._trace_bound_warned:
            self._trace_bound_warned = True
            warnings.warn(
                f"extract traces exceeded max_trace_samples="
                f"{self.max_trace_samples}; dropping oldest trace chunks — "
                "traces() now returns a suffix of the stream starting at "
                "trace_offset",
                RuntimeWarning,
                stacklevel=3,
            )
        while (
            len(self._score_chunks) > 1
            and self._trace_samples - self._score_chunks[0].size
            >= self.max_trace_samples
        ):
            dropped = self._score_chunks.popleft().size
            self._trace_samples -= dropped
            self._trace_offset += dropped
            self._trigger_chunks.popleft()

    def process(self, event: PipelineEvent) -> list[PipelineEvent]:
        if not isinstance(event, SignalChunk):
            return [event]
        if self.normalization == "global":
            return self._process_global(event)
        samples = event.samples
        scores = self._scorer.process(samples)
        trigger = self._trigger.apply(scores)
        self._record_traces(scores, trigger)
        self._samples_seen += samples.size
        if self.emit == "fragments":
            return [
                self._fragment_event(f)
                for f in self._cutter.push_fragments(samples, trigger)
            ]
        return [EnsembleEvent(e) for e in self._cutter.push_block(samples, trigger)]

    def _fragment_event(self, fragment) -> EnsembleFragmentEvent:
        if isinstance(fragment, FragmentOpen):
            return EnsembleFragmentEvent(
                kind="open", start=fragment.start, sample_rate=self.sample_rate
            )
        if isinstance(fragment, FragmentData):
            return EnsembleFragmentEvent(
                kind="data",
                start=fragment.start,
                sample_rate=self.sample_rate,
                samples=fragment.samples,
                offset=fragment.offset,
            )
        assert isinstance(fragment, FragmentClose)
        return EnsembleFragmentEvent(
            kind="close",
            start=fragment.start,
            sample_rate=self.sample_rate,
            end=fragment.end,
        )

    def _process_global(self, event: SignalChunk) -> list[PipelineEvent]:
        if self._samples_seen:
            raise BatchOnlyStageError(
                "normalization='global' reproduces the legacy whole-clip batch "
                "semantics and cannot run over a chunked stream; build the "
                "pipeline with normalization='running' for streaming"
            )
        samples = event.samples
        scores = sax_anomaly_scores(samples, self.config.anomaly, hop=self.hop, smooth=True)
        trigger = AdaptiveTrigger(self.config.trigger, settle=self.settle).apply(scores)
        ensembles = cut_ensembles(
            samples, trigger, self.sample_rate, min_duration=self.config.trigger.min_duration
        )
        self._record_traces(scores, trigger)
        self._samples_seen += samples.size
        return [EnsembleEvent(e) for e in ensembles]

    def flush(self) -> list[PipelineEvent]:
        if self.normalization == "global":
            return []
        if self.emit == "fragments":
            return [self._fragment_event(f) for f in self._cutter.flush_fragments()]
        return [EnsembleEvent(e) for e in self._cutter.flush()]


class FeatureStage(Stage):
    """Spectro-temporal pattern construction for every completed ensemble.

    Consumes buffered :class:`EnsembleEvent`\\ s *and* streamed
    :class:`EnsembleFragmentEvent`\\ s.  On the fragment path, audio is
    resliced causally by an :class:`~repro.classify.IncrementalPatternBuilder`
    and a partial per-pattern :class:`FeaturesEvent` is emitted the moment
    each pattern's records exist — before the ensemble closes.  What happens
    at the fragment close depends on ``emit``:

    * ``emit="ensembles"`` (default) — the fragments are also reassembled
      and a terminal :class:`FeaturesEvent` carrying the whole ensemble and
      the full pattern tuple is emitted, exactly as on the buffered path,
      so classification and result assembly are unchanged (bit-identical).
    * ``emit="patterns"`` — nothing is reassembled: only the partial
      per-pattern events flow, followed by the forwarded close marker.
      Peak memory stays O(slice × records_per_pattern) regardless of
      ensemble length (the latency/memory mode; no ensemble-level voting
      is possible downstream).
    """

    name = "features"
    consumes_fragments = True

    EMIT_MODES = ("ensembles", "patterns")

    def __init__(
        self,
        config: FeatureConfig | None = None,
        use_paa: bool = False,
        normalize: str = "max",
        log_compress: bool = True,
        log_gain: float = 100.0,
        sample_rate: int | None = None,
        emit: str = "ensembles",
    ) -> None:
        if emit not in self.EMIT_MODES:
            raise ValueError(
                f"emit must be one of {', '.join(self.EMIT_MODES)}; got {emit!r}"
            )
        self.config = config or FeatureConfig()
        self.use_paa = use_paa
        self.normalize = normalize
        self.log_compress = log_compress
        self.log_gain = log_gain
        self.sample_rate = sample_rate
        self.emit = emit
        self._extractor: PatternExtractor | None = None
        self._clear_session()
        if sample_rate is not None:
            self.start(sample_rate)

    def start(self, sample_rate: int) -> None:
        self.sample_rate = int(sample_rate)
        self._extractor = PatternExtractor(
            config=self.config,
            sample_rate=self.sample_rate,
            use_paa=self.use_paa,
            normalize=self.normalize,
            log_compress=self.log_compress,
            log_gain=self.log_gain,
        )

    @property
    def extractor(self) -> PatternExtractor:
        """The underlying :class:`PatternExtractor` (requires ``start``)."""
        if self._extractor is None:
            raise RuntimeError("feature stage has not been started with a sample rate")
        return self._extractor

    def patterns_for(self, samples: np.ndarray) -> list[np.ndarray]:
        """Patterns for a raw sample array (e.g. reference training songs)."""
        return self.extractor.patterns_from_samples(samples)

    def process(self, event: PipelineEvent) -> list[PipelineEvent]:
        if isinstance(event, EnsembleFragmentEvent):
            return self._process_fragment(event)
        if not isinstance(event, EnsembleEvent):
            return [event]
        patterns = tuple(self.extractor.patterns_from_ensemble(event.ensemble))
        return [FeaturesEvent(ensemble=event.ensemble, patterns=patterns)]

    # -- fragment path --------------------------------------------------------

    def _clear_session(self) -> None:
        self._builder: IncrementalPatternBuilder | None = None
        self._frag_parts: list[np.ndarray] | None = None
        self._frag_patterns: list[np.ndarray] = []

    def _process_fragment(self, event: EnsembleFragmentEvent) -> list[PipelineEvent]:
        if event.kind == "open":
            self._builder = self.extractor.builder()
            self._frag_parts = [] if self.emit == "ensembles" else None
            self._frag_patterns = []
            # Forward the marker: boundaries stay visible downstream while
            # the audio itself is consumed here.
            return [event]
        if event.kind == "data":
            if self._builder is None or event.samples is None:
                return []
            if self._frag_parts is not None:
                self._frag_parts.append(event.samples)
            patterns = self._builder.push(event.samples)
            if self.emit == "ensembles":
                self._frag_patterns.extend(patterns)
            return [FeaturesEvent(ensemble=None, patterns=(p,)) for p in patterns]
        # close: trailing records that never filled a pattern group are
        # dropped, exactly like the batch grouping drops them.
        outputs: list[PipelineEvent] = []
        if self._builder is not None and self.emit == "ensembles":
            parts = self._frag_parts or []
            if parts:
                ensemble = ensemble_from_fragments(
                    parts, event.start, event.end, event.sample_rate
                )
                outputs.append(
                    FeaturesEvent(ensemble=ensemble, patterns=tuple(self._frag_patterns))
                )
        self._clear_session()
        outputs.append(event)
        return outputs

    def reset(self) -> None:
        self._clear_session()


class ClassifyStage(Stage):
    """Per-ensemble majority voting with any ``predict``-style classifier."""

    name = "classify"

    def __init__(self, classifier) -> None:
        if not hasattr(classifier, "predict"):
            raise TypeError(
                f"classifier must expose a predict(pattern) method, got {classifier!r}"
            )
        self.classifier = classifier

    def process(self, event: PipelineEvent) -> list[PipelineEvent]:
        if not isinstance(event, FeaturesEvent):
            return [event]
        if event.ensemble is None:
            # A partial per-pattern event of a still-open ensemble: voting
            # needs the full pattern set, so pass it through untouched and
            # classify the terminal event instead.
            return [event]
        votes: Counter[Hashable] = Counter(
            predict_patterns(self.classifier, event.patterns)
        )
        label = majority_vote(list(votes.elements())) if votes else None
        return [
            ClassifiedEvent(
                ensemble=event.ensemble,
                patterns=event.patterns,
                label=label,
                votes=dict(votes),
            )
        ]
