"""The Stage protocol and the built-in acoustic stages.

A *stage* is a stateful event transformer with a tiny lifecycle:

* ``start(sample_rate)`` — called once per run before any event;
* ``process(event)`` — map one event to zero or more output events;
* ``flush()`` — emit whatever is still buffered at end of stream;
* ``reset()`` — drop all carried state so the stage can be reused.

Events a stage does not understand must pass through unchanged, which is
what makes stage graphs composable: inserting a new stage never breaks the
ones downstream.  The built-in stages cover the paper's chain — extraction
(saxanomaly → trigger → cutter), spectro-temporal features and MESO
classification — and register themselves in the default
:class:`~repro.pipeline.registry.StageRegistry` under ``"extract"``,
``"features"`` and ``"classify"``.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable

import numpy as np

from ..classify.features import PatternExtractor
from ..classify.voting import majority_vote, predict_patterns
from ..config import ExtractionConfig, FeatureConfig
from ..core.anomaly import sax_anomaly_scores
from ..core.cutter import cut_ensembles
from ..core.trigger import AdaptiveTrigger
from .results import (
    ClassifiedEvent,
    EnsembleEvent,
    FeaturesEvent,
    PipelineEvent,
    SignalChunk,
)
from .streaming import ChunkedAnomalyScorer, ChunkedCutter

__all__ = [
    "Stage",
    "BatchOnlyStageError",
    "ExtractStage",
    "FeatureStage",
    "ClassifyStage",
]


class BatchOnlyStageError(RuntimeError):
    """Raised when a batch-only stage configuration receives a chunked stream."""


class Stage:
    """Base class for pipeline stages (see module docstring for the contract)."""

    name = "stage"

    def start(self, sample_rate: int) -> None:
        """Prepare for a new run at the given sample rate."""

    def process(self, event: PipelineEvent) -> list[PipelineEvent]:
        """Transform one event; unknown events must be forwarded unchanged."""
        raise NotImplementedError

    def flush(self) -> list[PipelineEvent]:
        """Emit buffered events at end of stream (default: nothing)."""
        return []

    def reset(self) -> None:
        """Discard all carried state."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class ExtractStage(Stage):
    """saxanomaly → trigger → cutter: signal chunks in, ensembles out.

    Two normalisation modes are supported:

    * ``"running"`` (default) — causal prefix normalisation via the
      chunk-invariant streaming engine.  Results are identical no matter how
      the signal is chunked, which is what ``extract_stream()`` and the
      Dynamic River backend require.
    * ``"global"`` — the legacy batch semantics (Z-normalise against the
      whole clip), kept for exact reproduction of the paper experiments.
      Batch-only: feeding more than one chunk raises
      :class:`BatchOnlyStageError`.
    """

    name = "extract"

    def __init__(
        self,
        config: ExtractionConfig | None = None,
        hop: int = 16,
        normalization: str = "running",
        keep_traces: bool = True,
    ) -> None:
        if normalization not in ("running", "global"):
            raise ValueError(
                f"normalization must be 'running' or 'global', got {normalization!r}"
            )
        self.config = config or ExtractionConfig()
        self.hop = hop
        self.normalization = normalization
        self.keep_traces = keep_traces
        self.sample_rate = self.config.sample_rate
        self.reset()

    # -- configuration helpers ----------------------------------------------

    @property
    def settle(self) -> int:
        """Trigger settle period (derived from the anomaly config when 0)."""
        settle = self.config.trigger.settle
        if settle == 0:
            anomaly = self.config.anomaly
            settle = anomaly.window + anomaly.lag_window + anomaly.smooth_window
        return settle

    @property
    def samples_seen(self) -> int:
        return self._samples_seen

    def traces(self) -> tuple[np.ndarray | None, np.ndarray | None]:
        """(anomaly_scores, trigger) accumulated so far, or (None, None)."""
        if not self.keep_traces or not self._score_chunks:
            return None, None
        return np.concatenate(self._score_chunks), np.concatenate(self._trigger_chunks)

    # -- lifecycle -----------------------------------------------------------

    def start(self, sample_rate: int) -> None:
        self.sample_rate = int(sample_rate or self.config.sample_rate)
        self._cutter.sample_rate = self.sample_rate

    def reset(self) -> None:
        # Freeze the normalisation scale once the trigger's settle period is
        # over, so one loud event cannot re-scale the rest of the stream.
        self._scorer = ChunkedAnomalyScorer(
            self.config.anomaly, hop=self.hop, freeze_normalizer_after=self.settle
        )
        self._trigger = AdaptiveTrigger(self.config.trigger, settle=self.settle)
        self._cutter = ChunkedCutter(
            self.sample_rate, min_duration=self.config.trigger.min_duration
        )
        self._samples_seen = 0
        self._score_chunks: list[np.ndarray] = []
        self._trigger_chunks: list[np.ndarray] = []

    # -- processing ----------------------------------------------------------

    def process(self, event: PipelineEvent) -> list[PipelineEvent]:
        if not isinstance(event, SignalChunk):
            return [event]
        if self.normalization == "global":
            return self._process_global(event)
        samples = event.samples
        scores = self._scorer.process(samples)
        trigger = self._trigger.apply(scores)
        if self.keep_traces:
            self._score_chunks.append(scores)
            self._trigger_chunks.append(trigger)
        self._samples_seen += samples.size
        return [EnsembleEvent(e) for e in self._cutter.push_block(samples, trigger)]

    def _process_global(self, event: SignalChunk) -> list[PipelineEvent]:
        if self._samples_seen:
            raise BatchOnlyStageError(
                "normalization='global' reproduces the legacy whole-clip batch "
                "semantics and cannot run over a chunked stream; build the "
                "pipeline with normalization='running' for streaming"
            )
        samples = event.samples
        scores = sax_anomaly_scores(samples, self.config.anomaly, hop=self.hop, smooth=True)
        trigger = AdaptiveTrigger(self.config.trigger, settle=self.settle).apply(scores)
        ensembles = cut_ensembles(
            samples, trigger, self.sample_rate, min_duration=self.config.trigger.min_duration
        )
        if self.keep_traces:
            self._score_chunks.append(scores)
            self._trigger_chunks.append(trigger)
        self._samples_seen += samples.size
        return [EnsembleEvent(e) for e in ensembles]

    def flush(self) -> list[PipelineEvent]:
        if self.normalization == "global":
            return []
        return [EnsembleEvent(e) for e in self._cutter.flush()]


class FeatureStage(Stage):
    """Spectro-temporal pattern construction for every completed ensemble."""

    name = "features"

    def __init__(
        self,
        config: FeatureConfig | None = None,
        use_paa: bool = False,
        normalize: str = "max",
        log_compress: bool = True,
        log_gain: float = 100.0,
        sample_rate: int | None = None,
    ) -> None:
        self.config = config or FeatureConfig()
        self.use_paa = use_paa
        self.normalize = normalize
        self.log_compress = log_compress
        self.log_gain = log_gain
        self.sample_rate = sample_rate
        self._extractor: PatternExtractor | None = None
        if sample_rate is not None:
            self.start(sample_rate)

    def start(self, sample_rate: int) -> None:
        self.sample_rate = int(sample_rate)
        self._extractor = PatternExtractor(
            config=self.config,
            sample_rate=self.sample_rate,
            use_paa=self.use_paa,
            normalize=self.normalize,
            log_compress=self.log_compress,
            log_gain=self.log_gain,
        )

    @property
    def extractor(self) -> PatternExtractor:
        """The underlying :class:`PatternExtractor` (requires ``start``)."""
        if self._extractor is None:
            raise RuntimeError("feature stage has not been started with a sample rate")
        return self._extractor

    def patterns_for(self, samples: np.ndarray) -> list[np.ndarray]:
        """Patterns for a raw sample array (e.g. reference training songs)."""
        return self.extractor.patterns_from_samples(samples)

    def process(self, event: PipelineEvent) -> list[PipelineEvent]:
        if not isinstance(event, EnsembleEvent):
            return [event]
        patterns = tuple(self.extractor.patterns_from_ensemble(event.ensemble))
        return [FeaturesEvent(ensemble=event.ensemble, patterns=patterns)]


class ClassifyStage(Stage):
    """Per-ensemble majority voting with any ``predict``-style classifier."""

    name = "classify"

    def __init__(self, classifier) -> None:
        if not hasattr(classifier, "predict"):
            raise TypeError(
                f"classifier must expose a predict(pattern) method, got {classifier!r}"
            )
        self.classifier = classifier

    def process(self, event: PipelineEvent) -> list[PipelineEvent]:
        if not isinstance(event, FeaturesEvent):
            return [event]
        votes: Counter[Hashable] = Counter(
            predict_patterns(self.classifier, event.patterns)
        )
        label = majority_vote(list(votes.elements())) if votes else None
        return [
            ClassifiedEvent(
                ensemble=event.ensemble,
                patterns=event.patterns,
                label=label,
                votes=dict(votes),
            )
        ]
