"""The unified acoustic pipeline: one stage graph, every execution mode.

This package is the single composable API over the paper's processing chain
(saxanomaly → trigger → cutter → features → MESO).  A pipeline is declared
once with the fluent :class:`AcousticPipeline` builder and then executed

* **batch** over an :class:`~repro.synth.clips.AcousticClip`, a raw numpy
  array, a decoded :class:`~repro.dsp.wav.WavClip` or a WAV file path
  (``BuiltPipeline.run``),
* **streaming** over an unbounded iterator of chunks with carry-over state
  across chunk boundaries (``BuiltPipeline.extract_stream``),
* **parallel** over a whole corpus of independent sources with serial,
  thread or process backends (``BuiltPipeline.run_corpus`` /
  :class:`CorpusExecutor`), or
* **distributed** as Dynamic River record operators compiled from the same
  stages (``to_river()``), deployable on simulated hosts or on real OS
  processes over socket channels (``deploy(backend="simulated"|"process")``).

The streaming engine (:mod:`repro.pipeline.streaming`) is exactly invariant
to chunking, so all three modes agree on the extracted ensembles, patterns
and labels.  New stages plug in through the :data:`STAGES` registry.

**Incremental ensemble fragments.**  By default a trigger-high run is
buffered until it closes; ``extract(emit="fragments")`` instead streams each
run as open / data / close fragment events *while it is still open*, and the
feature stage computes patterns incrementally from the fragments (emitting a
partial per-pattern event as soon as each pattern's records exist).  With
``features(emit="patterns")`` nothing is ever reassembled, so per-ensemble
peak memory is bounded by O(chunk + records_per_pattern × bins_per_record)
instead of O(run length), and the time to the first pattern of an ensemble
no longer waits for the ensemble to end.  Fragment mode is available on
every backend — batch, ``extract_stream()``, simulated river and process
river — and its final output is bit-identical to buffered mode.

Quickstart::

    from repro import FAST_EXTRACTION, MesoClassifier
    from repro.pipeline import AcousticPipeline

    meso = MesoClassifier()                      # train it first
    pipe = (
        AcousticPipeline()
        .extract(FAST_EXTRACTION)
        .features(use_paa=True)
        .classify(meso)
        .build()
    )
    result = pipe.run(clip)
    for ensemble, label in zip(result.ensembles, result.labels):
        print(f"{ensemble.duration:.2f}s -> {label}")
"""

from .builder import AcousticPipeline, BuiltPipeline, PipelineBuildError
from .executor import BACKENDS, CorpusExecutionError, CorpusExecutor
from .registry import STAGES, StageRegistry
from .results import (
    ClassifiedEvent,
    EnsembleEvent,
    EnsembleFragmentEvent,
    FeaturesEvent,
    PipelineEvent,
    PipelineResult,
    SignalChunk,
)
from .river_adapter import (
    DEPLOY_BACKENDS,
    EnsembleMergeOperator,
    EnsemblePartitionOperator,
    EnsembleStageOperator,
    ExtractStageOperator,
    collect_result,
    deploy_clips_via_river,
    replica_groups,
    run_clips_via_river,
)
from .sources import (
    ChunkSourceError,
    SocketChunkSource,
    WavChunkStream,
    WavDirectorySource,
)
from .stages import (
    BatchOnlyStageError,
    ClassifyStage,
    ExtractStage,
    FeatureStage,
    Stage,
)
from .streaming import (
    ChunkedAnomalyScorer,
    ChunkedCutter,
    FragmentClose,
    FragmentData,
    FragmentOpen,
    RunningNormalizer,
    rechunk,
)

__all__ = [
    "AcousticPipeline",
    "BACKENDS",
    "BatchOnlyStageError",
    "BuiltPipeline",
    "ChunkSourceError",
    "ChunkedAnomalyScorer",
    "ChunkedCutter",
    "ClassifiedEvent",
    "ClassifyStage",
    "CorpusExecutionError",
    "CorpusExecutor",
    "DEPLOY_BACKENDS",
    "EnsembleEvent",
    "EnsembleFragmentEvent",
    "EnsembleMergeOperator",
    "EnsemblePartitionOperator",
    "EnsembleStageOperator",
    "ExtractStage",
    "ExtractStageOperator",
    "FeatureStage",
    "FeaturesEvent",
    "FragmentClose",
    "FragmentData",
    "FragmentOpen",
    "PipelineBuildError",
    "PipelineEvent",
    "PipelineResult",
    "RunningNormalizer",
    "STAGES",
    "SignalChunk",
    "SocketChunkSource",
    "Stage",
    "StageRegistry",
    "WavChunkStream",
    "WavDirectorySource",
    "collect_result",
    "deploy_clips_via_river",
    "rechunk",
    "replica_groups",
    "run_clips_via_river",
]
