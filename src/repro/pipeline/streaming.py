"""Chunk-invariant streaming primitives shared by every execution backend.

The unified pipeline promises one property above all others: processing a
signal in chunks of *any* size produces exactly the same output as processing
it in one shot.  That is what lets the same stage graph run over recorded
clips, over ``extract_stream()`` chunk iterators and inside Dynamic River
record operators without re-implementing the algorithms per backend.

Chunk invariance requires every computation to be *causal* — sample ``i``
may only depend on samples ``0..i`` — which rules out the whole-clip
Z-normalisation of the legacy batch scorer.  The primitives here therefore
normalise against running (prefix) statistics, symbolise pointwise, count
SAX n-grams over carried history buffers and smooth with a trailing moving
average whose state survives chunk boundaries.  Each ``process`` call is
fully vectorised over its chunk, so handing the entire signal in as a single
chunk recovers batch-path performance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from ..config import AnomalyConfig
from ..core.cutter import Ensemble
from ..timeseries.bitmap import windowed_code_counts
from ..timeseries.sax import symbolize

__all__ = [
    "RunningNormalizer",
    "ChunkedAnomalyScorer",
    "ChunkedCutter",
    "FragmentOpen",
    "FragmentData",
    "FragmentClose",
    "rechunk",
]


def rechunk(chunks: Iterable[np.ndarray], size: int) -> Iterator[np.ndarray]:
    """Re-slice a chunk stream into fixed-``size`` chunks (tail may be short).

    Buffering is bounded: at most ``size - 1`` carried samples plus the
    incoming chunk are ever held.  Because the whole engine is
    chunk-invariant, rechunking never changes any downstream output — it
    only normalises the granularity at which a source hands data over
    (useful around sources with their own natural block size, e.g. wrapping
    ``WavDirectorySource.stream()`` when a consumer wants different chunks
    than the files were read with).
    """
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    carry = np.zeros(0)
    for chunk in chunks:
        arr = np.asarray(chunk, dtype=float).ravel()
        merged = carry.size > 0
        if merged:
            arr = np.concatenate([carry, arr])
        full = (arr.size // size) * size
        for start in range(0, full, size):
            piece = arr[start : start + size]
            # Slices of the internal concatenation buffer are copied so a
            # consumer that retains a chunk does not pin the whole buffer.
            yield piece.copy() if merged else piece
        # Copy the remainder too: carrying a view would keep the entire
        # buffer it was sliced from alive, silently voiding the size - 1
        # bound stated above.
        carry = arr[full:].copy()
    if carry.size:
        yield carry


@dataclass
class RunningNormalizer:
    """Causal Z-normalisation with carried prefix statistics.

    Sample ``i`` is normalised against the mean and population deviation of
    samples ``0..i`` (inclusive), matching what a streaming operator can
    actually compute.  The update is vectorised per chunk via cumulative
    sums; the carried aggregates make the result independent of how the
    stream is chunked.

    When ``freeze_after`` is set, the statistics stop updating once that
    many samples have been observed and every later sample is normalised
    against the frozen mean and deviation.  A stationary scale is important
    for the anomaly trigger downstream: without it, one loud event inflates
    the running deviation and silently re-scales — and thereby re-symbolises
    — the entire stream that follows, collapsing the trigger's baseline
    deviation into a hair trigger.  Freezing after the warm-up mirrors the
    constant scale that whole-clip Z-normalisation gives the batch path.
    """

    freeze_after: int | None = None
    count: int = 0
    total: float = 0.0
    total_sq: float = 0.0

    def __post_init__(self) -> None:
        if self.freeze_after is not None and self.freeze_after < 2:
            raise ValueError(f"freeze_after must be >= 2, got {self.freeze_after}")

    def process(self, samples: np.ndarray) -> np.ndarray:
        """Normalise one chunk and fold it into the running statistics."""
        x = np.asarray(samples, dtype=float).ravel()
        if x.size == 0:
            return x.copy()
        if self.freeze_after is not None:
            remaining = self.freeze_after - self.count
            if remaining <= 0:
                return self._frozen(x)
            if remaining < x.size:
                # The chunk straddles the freeze point: finish the running
                # region exactly, then continue with frozen statistics.
                head = self._running(x[:remaining])
                return np.concatenate([head, self._frozen(x[remaining:])])
        return self._running(x)

    def _running(self, x: np.ndarray) -> np.ndarray:
        counts = self.count + np.arange(1, x.size + 1)
        sums = self.total + np.cumsum(x)
        sums_sq = self.total_sq + np.cumsum(x * x)
        means = sums / counts
        variances = np.maximum(sums_sq / counts - means * means, 0.0)
        stds = np.sqrt(variances)
        defined = (counts >= 2) & (stds > 0)
        normalized = np.where(defined, (x - means) / np.where(stds > 0, stds, 1.0), 0.0)
        self.count = int(counts[-1])
        self.total = float(sums[-1])
        self.total_sq = float(sums_sq[-1])
        return normalized

    def _frozen(self, x: np.ndarray) -> np.ndarray:
        mean = self.total / self.count
        variance = max(self.total_sq / self.count - mean * mean, 0.0)
        std = np.sqrt(variance)
        if std <= 0:
            return np.zeros_like(x)
        return (x - mean) / std

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0


@dataclass
class ChunkedAnomalyScorer:
    """SAX-bitmap anomaly scorer that is exactly invariant to chunking.

    Semantics (all causal):

    * samples are normalised with :class:`RunningNormalizer` and symbolised
      pointwise;
    * the n-gram *ending* at sample ``i`` summarises symbols
      ``i - level + 1 .. i``;
    * at evaluation points — every ``hop`` samples starting at
      ``window + lag_window + level - 2`` — the score is the Euclidean
      distance between the normalised n-gram frequencies of the last
      ``window`` grams (lead) and the ``lag_window`` grams before them;
    * between evaluation points the score holds its last evaluated value
      (0 before the first evaluation);
    * the held score is smoothed with a trailing moving average of width
      ``smooth_window`` (warm-up ramp included, exactly like
      :func:`repro.timeseries.windows.moving_average`).

    ``process`` consumes one chunk and returns one smoothed score per
    sample; concatenating the outputs over any chunking of a signal yields
    bit-identical results.
    """

    config: AnomalyConfig = field(default_factory=AnomalyConfig)
    hop: int = 16
    #: Freeze the running normalisation statistics after this many samples
    #: (None keeps them running forever); see :class:`RunningNormalizer`.
    freeze_normalizer_after: int | None = None

    def __post_init__(self) -> None:
        if self.hop < 1:
            raise ValueError(f"hop must be >= 1, got {self.hop}")
        self._normalizer = RunningNormalizer(freeze_after=self.freeze_normalizer_after)
        self._sym_tail = np.zeros(0, dtype=np.int64)
        self._codes = np.zeros(0, dtype=np.int64)
        # Absolute sample index one past the last buffered gram-end.  Grams
        # end at sample `level - 1` onward, so that is where the count starts.
        self._codes_end = self.config.level - 1
        self._samples_seen = 0
        self._last_eval = 0.0
        self._smooth_tail = np.zeros(0)

    # -- derived geometry ----------------------------------------------------

    @property
    def first_eval(self) -> int:
        """Absolute index of the first sample with a defined raw score."""
        cfg = self.config
        return cfg.window + cfg.lag_window + cfg.level - 2

    @property
    def samples_seen(self) -> int:
        return self._samples_seen

    # -- chunk processing ----------------------------------------------------

    def process(self, samples: np.ndarray) -> np.ndarray:
        """Score one chunk; returns an array of the same length."""
        x = np.asarray(samples, dtype=float).ravel()
        if x.size == 0:
            return np.zeros(0)
        cfg = self.config
        window, lag, level = cfg.window, cfg.lag_window, cfg.level
        start = self._samples_seen

        symbols = symbolize(self._normalizer.process(x), cfg.alphabet)

        # New gram codes: one per gram ending inside this chunk.
        ext = np.concatenate([self._sym_tail, symbols])
        if ext.size >= level:
            gram_count = ext.size - level + 1
            codes = np.zeros(gram_count, dtype=np.int64)
            for offset in range(level):
                codes = codes * cfg.alphabet + ext[offset : offset + gram_count]
        else:
            codes = np.zeros(0, dtype=np.int64)

        buffer = np.concatenate([self._codes, codes])
        # Absolute gram-end index of buffer[0].
        buffer_start = self._codes_end + codes.size - buffer.size

        raw = self._evaluate(buffer, buffer_start, start, x.size)

        # Carry state for the next chunk.
        keep = window + lag - 1
        self._codes = buffer[-keep:].copy() if buffer.size > keep else buffer
        self._codes_end += codes.size
        if level > 1:
            self._sym_tail = ext[-(level - 1) :].copy()
        self._samples_seen += x.size
        return self._smooth(raw, start)

    def _evaluate(
        self, buffer: np.ndarray, buffer_start: int, start: int, length: int
    ) -> np.ndarray:
        """Raw (pre-smoothing) scores for samples ``[start, start + length)``."""
        cfg = self.config
        window, lag = cfg.window, cfg.lag_window
        first = self.first_eval
        lower = max(start, first)
        offset = -(-(lower - first) // self.hop) * self.hop  # ceil to the grid
        eval_points = np.arange(first + offset, start + length, self.hop)
        if eval_points.size == 0:
            return np.full(length, self._last_eval)

        ends = eval_points - buffer_start + 1
        lead_starts = eval_points - window + 1 - buffer_start
        lag_starts = eval_points - window - lag + 1 - buffer_start
        n_codes = cfg.alphabet**cfg.level
        # Both sliding windows of every evaluation point counted in one
        # vectorised difference-array pass instead of one scan of the
        # buffer per code — integer-exact, so the scores are bit-identical
        # to per-code counting.
        lead_counts, lag_counts = windowed_code_counts(
            buffer, ends, lead_starts, lag_starts, n_codes, hop=self.hop
        )
        eval_scores = np.sqrt(
            np.sum((lead_counts / window - lag_counts / lag) ** 2, axis=1)
        )

        # Hold each evaluated score until the next evaluation point.
        positions = np.arange(start, start + length)
        indices = np.searchsorted(eval_points, positions, side="right") - 1
        raw = np.where(indices >= 0, eval_scores[np.maximum(indices, 0)], self._last_eval)
        self._last_eval = float(eval_scores[-1])
        return raw

    def _smooth(self, raw: np.ndarray, start: int) -> np.ndarray:
        """Trailing moving average with carried tail (chunk-invariant)."""
        width = self.config.smooth_window
        if width == 1:
            return raw
        window_input = np.concatenate([self._smooth_tail, raw])
        cumulative = np.cumsum(window_input)
        spans = np.minimum(start + np.arange(1, raw.size + 1), width)
        ends = self._smooth_tail.size + np.arange(raw.size)
        starts = ends - spans + 1
        sums = cumulative[ends] - np.where(starts > 0, cumulative[starts - 1], 0.0)
        self._smooth_tail = window_input[-(width - 1) :].copy()
        return sums / spans

    def reset(self) -> None:
        """Clear all carried state (normalisation, grams, smoothing)."""
        self.__post_init__()


@dataclass(frozen=True)
class FragmentOpen:
    """A trigger-high run has reached ``min_duration``: an ensemble begins."""

    #: Absolute index of the run's first sample.
    start: int


@dataclass(frozen=True)
class FragmentData:
    """A contiguous slice of an open ensemble's audio."""

    #: Absolute index of the run's first sample (the enclosing ensemble).
    start: int
    #: Absolute index of ``samples[0]`` within the stream.
    offset: int
    samples: np.ndarray


@dataclass(frozen=True)
class FragmentClose:
    """The trigger dropped: the ensemble spanning ``[start, end)`` is done."""

    start: int
    end: int


FragmentEvent = FragmentOpen | FragmentData | FragmentClose


@dataclass
class ChunkedCutter:
    """Run-length cutter with carry-over across chunk boundaries.

    Two views of the same run-length machinery:

    * ``push_fragments`` is the primitive: it consumes equal-length sample
      and trigger chunks and emits :class:`FragmentOpen` /
      :class:`FragmentData` / :class:`FragmentClose` events *while* a
      trigger-high run is still in progress.  At most ``min_duration - 1``
      samples are ever buffered (a run is announced once it is provably
      long enough to keep), so peak memory no longer grows with run length.
    * ``push_block`` is the buffered view, re-expressed over the fragments:
      it reassembles each fragment stream into a whole :class:`Ensemble`
      and returns the ensembles completed inside the chunk.  Output is
      bit-identical to the historical buffered implementation.

    The two entry points share position state; use one or the other on a
    given cutter instance, not both.  ``flush`` / ``flush_fragments`` close
    a run left open at end of stream.  Positions are absolute within the
    stream.
    """

    sample_rate: int
    min_duration: int = 1

    def __post_init__(self) -> None:
        if self.min_duration < 1:
            raise ValueError(f"min_duration must be >= 1, got {self.min_duration}")
        self._position = 0
        self._open_start: int | None = None
        #: Samples held back until the run reaches ``min_duration``.
        self._pending: list[np.ndarray] = []
        self._pending_size = 0
        #: Whether FragmentOpen has been emitted for the current run.
        self._announced = False
        #: Samples emitted as fragments for the current run so far.
        self._emitted = 0
        #: Reassembly buffer used by the buffered ``push_block`` view only.
        self._parts: list[np.ndarray] = []

    @property
    def open(self) -> bool:
        """True while a trigger-high run is being accumulated."""
        return self._open_start is not None

    @property
    def position(self) -> int:
        """Absolute index of the next sample to be consumed."""
        return self._position

    # -- fragment view --------------------------------------------------------

    def push_fragments(
        self, samples: np.ndarray, trigger: np.ndarray
    ) -> list[FragmentEvent]:
        """Consume one (samples, trigger) chunk; emit fragment events.

        Runs shorter than ``min_duration`` produce no events at all (they
        are discarded before being announced, exactly like the buffered
        path discards them at close).
        """
        sig = np.asarray(samples, dtype=float).ravel()
        trig = np.asarray(trigger).ravel().astype(bool)
        if sig.size != trig.size:
            raise ValueError(
                f"samples ({sig.size}) and trigger ({trig.size}) must align"
            )
        events: list[FragmentEvent] = []
        if sig.size == 0:
            return events
        edges = np.flatnonzero(np.diff(trig.astype(np.int8))) + 1
        bounds = np.concatenate(([0], edges, [trig.size]))
        for run_start, run_end in zip(bounds[:-1], bounds[1:]):
            if trig[run_start]:
                if self._open_start is None:
                    self._open_start = self._position + int(run_start)
                    self._pending = []
                    self._pending_size = 0
                    self._announced = False
                    self._emitted = 0
                segment = sig[run_start:run_end].copy()
                events.extend(self._absorb(segment))
            else:
                events.extend(self._close_fragments())
        self._position += trig.size
        return events

    def flush_fragments(self) -> list[FragmentEvent]:
        """Close (or discard, if still too short) a run open at end of stream."""
        return self._close_fragments()

    def _absorb(self, segment: np.ndarray) -> list[FragmentEvent]:
        """Fold one trigger-high segment into the open run."""
        start = self._open_start
        assert start is not None
        if self._announced:
            event = FragmentData(
                start=start, offset=start + self._emitted, samples=segment
            )
            self._emitted += segment.size
            return [event]
        self._pending.append(segment)
        self._pending_size += segment.size
        if self._pending_size < self.min_duration:
            return []
        data = (
            np.concatenate(self._pending)
            if len(self._pending) > 1
            else self._pending[0]
        )
        self._pending = []
        self._pending_size = 0
        self._announced = True
        self._emitted = data.size
        return [FragmentOpen(start=start), FragmentData(start=start, offset=start, samples=data)]

    def _close_fragments(self) -> list[FragmentEvent]:
        if self._open_start is None:
            return []
        start = self._open_start
        announced, emitted = self._announced, self._emitted
        self._open_start = None
        self._pending = []
        self._pending_size = 0
        self._announced = False
        self._emitted = 0
        if not announced:
            # The run never reached min_duration: discarded, nothing was
            # announced downstream, so nothing needs closing.
            return []
        return [FragmentClose(start=start, end=start + emitted)]

    # -- buffered view (re-expressed over the fragments) ----------------------

    def push_block(self, samples: np.ndarray, trigger: np.ndarray) -> list[Ensemble]:
        """Consume one (samples, trigger) chunk; return completed ensembles."""
        completed: list[Ensemble] = []
        for event in self.push_fragments(samples, trigger):
            ensemble = self._reassemble(event)
            if ensemble is not None:
                completed.append(ensemble)
        return completed

    def flush(self) -> list[Ensemble]:
        """Close a run left open at the end of the stream."""
        completed: list[Ensemble] = []
        for event in self.flush_fragments():
            ensemble = self._reassemble(event)
            if ensemble is not None:
                completed.append(ensemble)
        return completed

    def _reassemble(self, event: FragmentEvent) -> Ensemble | None:
        if isinstance(event, FragmentOpen):
            self._parts = []
            return None
        if isinstance(event, FragmentData):
            self._parts.append(event.samples)
            return None
        if not self._parts:
            # A close with no buffered data means this run's FragmentOpen /
            # FragmentData events were consumed through push_fragments()
            # while the close arrived here — the two entry points were mixed
            # on one instance.  Fail loudly rather than with an IndexError.
            raise ValueError(
                "FragmentClose with no buffered fragment data: use either "
                "push_block()/flush() or push_fragments()/flush_fragments() "
                "on a given ChunkedCutter, not both"
            )
        samples = (
            np.concatenate(self._parts) if len(self._parts) > 1 else self._parts[0]
        )
        self._parts = []
        return Ensemble(
            samples=samples,
            start=event.start,
            end=event.end,
            sample_rate=self.sample_rate,
        )

    def reset(self) -> None:
        self.__post_init__()
