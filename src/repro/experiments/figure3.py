"""Figure 3: the spectrogram of Figure 2 after PAA reduction.

The paper applies PAA to the frequency data of each spectrogram column and
notes that the reduced spectrogram remains similar in appearance.  The
experiment quantifies that similarity: the column-wise correlation between
the original spectrogram (averaged down to the PAA resolution) and the PAA
spectrogram should stay high.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dsp.spectrogram import Spectrogram, paa_spectrogram, spectrogram
from ..synth.clips import AcousticClip
from ..timeseries.paa import paa
from .figure2 import reference_clip

__all__ = ["Figure3Data", "build_figure3", "main"]


@dataclass
class Figure3Data:
    """Original and PAA-reduced spectrograms plus their similarity."""

    original: Spectrogram
    reduced: Spectrogram
    segments: int

    def column_correlation(self) -> float:
        """Mean Pearson correlation between matched columns of the two spectrograms.

        The original's columns are PAA-reduced to the same number of bands
        before comparison, which mirrors the visual comparison the paper
        makes between its Figures 2 and 3.
        """
        if self.original.magnitudes.shape[1] == 0:
            return 1.0
        correlations = []
        for col in range(self.original.magnitudes.shape[1]):
            original_column = paa(self.original.magnitudes[:, col], self.segments)
            reduced_column = self.reduced.magnitudes[:, col]
            if np.std(original_column) < 1e-12 or np.std(reduced_column) < 1e-12:
                continue
            correlations.append(float(np.corrcoef(original_column, reduced_column)[0, 1]))
        return float(np.mean(correlations)) if correlations else 1.0

    def summary(self) -> dict:
        return {
            "original_shape": tuple(self.original.shape),
            "reduced_shape": tuple(self.reduced.shape),
            "reduction_factor": round(self.original.shape[0] / max(self.reduced.shape[0], 1), 2),
            "column_correlation": round(self.column_correlation(), 4),
        }


def build_figure3(
    clip: AcousticClip | None = None,
    frame_size: int = 512,
    segments: int = 20,
    seed: int = 2007,
) -> Figure3Data:
    """Compute the original and PAA spectrograms of the reference clip."""
    clip = clip or reference_clip(seed=seed)
    original = spectrogram(clip.samples, clip.sample_rate, frame_size=frame_size)
    reduced = paa_spectrogram(original, segments=segments)
    return Figure3Data(original=original, reduced=reduced, segments=segments)


def main() -> None:  # pragma: no cover - thin CLI wrapper
    data = build_figure3()
    for key, value in data.summary().items():
        print(f"{key}: {value}")


if __name__ == "__main__":  # pragma: no cover
    main()
