"""Table 2: MESO classification accuracy and timing on the four data sets.

For each of *Pattern*, *Ensemble*, *PAA Pattern* and *PAA Ensemble* the
driver runs the leave-one-out and resubstitution protocols and reports the
mean accuracy, its standard deviation over repeats, and the cumulative
training / testing time — the same rows the paper's Table 2 reports.

Shape expectations (EXPERIMENTS.md tracks these):

* resubstitution accuracy exceeds leave-one-out accuracy on every data set;
* resubstitution accuracy exceeds 90 % on every data set;
* the PAA variants beat their raw counterparts on leave-one-out accuracy;
* the ensemble (voting) variants beat the single-pattern variants.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..classify.crossval import ExperimentResult, leave_one_out, resubstitution
from ..meso.classifier import MesoClassifier, MesoConfig
from .datasets import BENCH_SCALE, ExperimentData, ExperimentScale, build_experiment_data
from .paper_values import PAPER_TABLE2

__all__ = ["Table2Row", "build_table2", "format_table2", "main"]

DATASET_NAMES = ("Pattern", "Ensemble", "PAA Pattern", "PAA Ensemble")


@dataclass(frozen=True)
class Table2Row:
    """One (data set, protocol) cell block of Table 2."""

    dataset: str
    protocol: str
    paper_accuracy: float
    paper_std: float
    measured_accuracy: float
    measured_std: float
    training_seconds: float
    testing_seconds: float
    result: ExperimentResult


def default_classifier_factory() -> MesoClassifier:
    """The classifier configuration used by all Table 2 / Table 3 runs."""
    return MesoClassifier(MesoConfig())


def build_table2(
    data: ExperimentData | None = None,
    scale: ExperimentScale = BENCH_SCALE,
    classifier_factory=default_classifier_factory,
    datasets: tuple[str, ...] = DATASET_NAMES,
    backend: str = "serial",
    workers: int | None = None,
    store=None,
    from_store=None,
    ledger=None,
) -> list[Table2Row]:
    """Run the Table 2 experiments and return the rows.

    ``backend`` / ``workers`` parallelise the per-clip extraction behind
    the data sets (bit-identical across backends); the cross-validation
    loops themselves stay serial because MESO training is order-dependent.
    ``store`` / ``from_store`` persist the extracted ensembles to a feature
    store, or replay them from one without re-extracting (ignored when
    ``data`` is passed in); the rows are bit-identical either way.
    ``ledger`` runs the extraction under a durable, resumable job ledger
    (see :func:`repro.jobs.run_corpus`).
    """
    if data is None:
        data = build_experiment_data(
            scale,
            backend=backend,
            workers=workers,
            store=store,
            from_store=from_store,
            ledger=ledger,
        )
    rows: list[Table2Row] = []
    for name in datasets:
        items = data.dataset(name)
        for protocol, runner, repeats in (
            ("Leave-one-out", leave_one_out, data.scale.loo_repeats),
            ("Resubstitution", resubstitution, data.scale.resub_repeats),
        ):
            result = runner(items, classifier_factory, repeats=repeats, seed=data.scale.corpus.seed)
            paper_acc, paper_std = PAPER_TABLE2[name][protocol]
            rows.append(
                Table2Row(
                    dataset=name,
                    protocol=protocol,
                    paper_accuracy=paper_acc,
                    paper_std=paper_std,
                    measured_accuracy=result.summary.mean_percent,
                    measured_std=result.summary.std_percent,
                    training_seconds=result.training_seconds,
                    testing_seconds=result.testing_seconds,
                    result=result,
                )
            )
    return rows


def format_table2(rows: list[Table2Row]) -> str:
    """Plain-text rendering with paper and measured accuracies side by side."""
    lines = [
        f"{'Data set':<14}{'Protocol':<16}{'paper':>14}{'measured':>16}{'train(s)':>10}{'test(s)':>9}"
    ]
    for row in rows:
        paper = f"{row.paper_accuracy:.1f}%±{row.paper_std:.1f}%"
        measured = f"{row.measured_accuracy:.1f}%±{row.measured_std:.1f}%"
        lines.append(
            f"{row.dataset:<14}{row.protocol:<16}{paper:>14}{measured:>16}"
            f"{row.training_seconds:>10.2f}{row.testing_seconds:>9.2f}"
        )
    return "\n".join(lines)


def check_shape(rows: list[Table2Row]) -> dict[str, bool]:
    """Evaluate the qualitative claims the reproduction must preserve."""
    accuracy = {(row.dataset, row.protocol): row.measured_accuracy for row in rows}

    def get(dataset: str, protocol: str) -> float:
        return accuracy.get((dataset, protocol), float("nan"))

    checks = {
        "resubstitution_above_90": all(
            get(name, "Resubstitution") > 90.0
            for name in DATASET_NAMES
            if (name, "Resubstitution") in accuracy
        ),
        "resubstitution_beats_loo": all(
            get(name, "Resubstitution") >= get(name, "Leave-one-out")
            for name in DATASET_NAMES
            if (name, "Resubstitution") in accuracy and (name, "Leave-one-out") in accuracy
        ),
        "paa_beats_raw_on_loo": (
            get("PAA Pattern", "Leave-one-out") >= get("Pattern", "Leave-one-out")
            and get("PAA Ensemble", "Leave-one-out") >= get("Ensemble", "Leave-one-out")
        ),
        "ensembles_beat_patterns_on_loo": (
            get("Ensemble", "Leave-one-out") >= get("Pattern", "Leave-one-out")
            and get("PAA Ensemble", "Leave-one-out") >= get("PAA Pattern", "Leave-one-out")
        ),
    }
    return checks


def main() -> None:  # pragma: no cover - thin CLI wrapper
    rows = build_table2()
    print(format_table2(rows))
    for name, passed in check_shape(rows).items():
        print(f"  shape check {name}: {'PASS' if passed else 'FAIL'}")


if __name__ == "__main__":  # pragma: no cover
    main()
