"""The Section 4 data-reduction claim.

"Extraction of ensembles from acoustic clips reduced the amount of data that
required further processing by 80.6%."  The experiment measures the same
quantity over a synthetic corpus and also reports the energy-segmentation
baseline for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.threshold import EnergySegmenter
from ..config import FAST_EXTRACTION, ExtractionConfig
from ..core.reduction import ReductionReport, measure_reduction
from ..pipeline import AcousticPipeline
from ..synth.dataset import ClipCorpus, CorpusSpec, build_corpus
from .paper_values import PAPER_REDUCTION_PERCENT

__all__ = ["ReductionComparison", "build_reduction", "main"]


@dataclass(frozen=True)
class ReductionComparison:
    """Ensemble-extraction reduction next to the paper's figure and the baseline."""

    paper_percent: float
    measured: ReductionReport
    baseline_retained_samples: int

    @property
    def measured_percent(self) -> float:
        return self.measured.reduction_percent

    @property
    def baseline_percent(self) -> float:
        if self.measured.total_samples == 0:
            return 0.0
        return 100.0 * (1.0 - self.baseline_retained_samples / self.measured.total_samples)

    def summary(self) -> dict:
        return {
            "paper_reduction_percent": self.paper_percent,
            "measured_reduction_percent": round(self.measured_percent, 1),
            "energy_baseline_reduction_percent": round(self.baseline_percent, 1),
            "clips": self.measured.clips,
            "ensembles": self.measured.ensembles,
        }


def build_reduction(
    corpus: ClipCorpus | None = None,
    config: ExtractionConfig = FAST_EXTRACTION,
    corpus_spec: CorpusSpec | None = None,
    backend: str = "serial",
    workers: int | None = None,
    store=None,
    from_store=None,
) -> ReductionComparison:
    """Measure data reduction over a corpus for extraction and the baseline.

    ``store`` persists every extraction result to a feature store as the
    clips run; ``from_store`` replays a store written that way instead of
    re-extracting — the reduction numbers are bit-identical.  The energy
    baseline always needs the raw audio, so the corpus is (re)generated in
    both modes; synthetic corpora are deterministic, making that exact.
    """
    if corpus is None:
        corpus = build_corpus(
            corpus_spec
            or CorpusSpec(clips_per_species=2, songs_per_clip=2, clip_duration=15.0, sample_rate=16000)
        )
    pipeline = AcousticPipeline().extract(config, normalization="global").build()
    if from_store is not None:
        results = pipeline.run_corpus(from_store=from_store)
        total = sum(result.total_samples for result in results)
        retained = sum(result.retained_samples for result in results)
        report = ReductionReport(
            clips=len(results),
            total_samples=total,
            retained_samples=retained,
            ensembles=sum(len(result.ensembles) for result in results),
        )
    else:
        report, _ = measure_reduction(
            corpus, pipeline, backend=backend, workers=workers, store=store
        )
    segmenter = EnergySegmenter(min_duration=config.trigger.min_duration)
    baseline_retained = 0
    for clip in corpus.clips:
        for segment in segmenter.segment(clip.samples, clip.sample_rate):
            baseline_retained += segment.length
    return ReductionComparison(
        paper_percent=PAPER_REDUCTION_PERCENT,
        measured=report,
        baseline_retained_samples=baseline_retained,
    )


def main() -> None:  # pragma: no cover - thin CLI wrapper
    comparison = build_reduction()
    for key, value in comparison.summary().items():
        print(f"{key}: {value}")


if __name__ == "__main__":  # pragma: no cover
    main()
