"""Experiment drivers that regenerate every table and figure of the paper."""

from .ablation import (
    AblationPoint,
    default_ablation_corpus,
    evaluate_config,
    sweep_alphabet,
    sweep_lag_factor,
    sweep_smoothing,
    sweep_threshold,
    sweep_window,
)
from .datasets import (
    BENCH_SCALE,
    PAPER_SCALE,
    TEST_SCALE,
    ExperimentData,
    ExperimentScale,
    build_experiment_data,
)
from .figure2 import Figure2Data, build_figure2, reference_clip
from .figure3 import Figure3Data, build_figure3
from .figure4 import Figure4Data, build_figure4
from .figure6 import Figure6Data, build_figure6
from .paper_values import (
    PAPER_REDUCTION_PERCENT,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3_DIAGONAL,
)
from .reduction import ReductionComparison, build_reduction
from .table1 import Table1Row, build_table1, format_table1
from .table2 import Table2Row, build_table2, check_shape, format_table2
from .table3 import Table3Result, build_table3, format_table3

__all__ = [
    "AblationPoint",
    "BENCH_SCALE",
    "ExperimentData",
    "ExperimentScale",
    "Figure2Data",
    "Figure3Data",
    "Figure4Data",
    "Figure6Data",
    "PAPER_REDUCTION_PERCENT",
    "PAPER_SCALE",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3_DIAGONAL",
    "ReductionComparison",
    "TEST_SCALE",
    "Table1Row",
    "Table2Row",
    "Table3Result",
    "build_experiment_data",
    "build_figure2",
    "build_figure3",
    "build_figure4",
    "build_figure6",
    "build_reduction",
    "build_table1",
    "build_table2",
    "build_table3",
    "check_shape",
    "default_ablation_corpus",
    "evaluate_config",
    "format_table1",
    "format_table2",
    "format_table3",
    "reference_clip",
    "sweep_alphabet",
    "sweep_lag_factor",
    "sweep_smoothing",
    "sweep_threshold",
    "sweep_window",
]
