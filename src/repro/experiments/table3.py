"""Table 3: the confusion matrix for PAA ensembles under leave-one-out.

The paper's qualitative findings — the main diagonal dominates every row,
and the low-pitched mourning dove is among the hardest species while the
red-winged blackbird is among the easiest — are what this reproduction
checks; cell-level percentages depend on the corpus.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..classify.confusion import ConfusionMatrix
from ..classify.crossval import leave_one_out
from .datasets import BENCH_SCALE, ExperimentData, ExperimentScale, build_experiment_data
from .paper_values import PAPER_TABLE3_DIAGONAL
from .table2 import default_classifier_factory

__all__ = ["Table3Result", "build_table3", "format_table3", "main"]


@dataclass
class Table3Result:
    """The measured confusion matrix plus the paper's diagonal for comparison."""

    confusion: ConfusionMatrix
    paper_diagonal: dict[str, float]
    loo_accuracy_percent: float

    def measured_diagonal(self) -> dict[str, float]:
        return {str(k): v for k, v in self.confusion.per_class_accuracy().items()}

    def diagonal_dominant(self) -> bool:
        return self.confusion.diagonal_dominant()


def build_table3(
    data: ExperimentData | None = None,
    scale: ExperimentScale = BENCH_SCALE,
    classifier_factory=default_classifier_factory,
) -> Table3Result:
    """Run the PAA-ensemble leave-one-out experiment and collect its confusion matrix."""
    if data is None:
        data = build_experiment_data(scale)
    items = data.dataset("PAA Ensemble")
    result = leave_one_out(
        items, classifier_factory, repeats=data.scale.loo_repeats, seed=data.scale.corpus.seed
    )
    return Table3Result(
        confusion=result.confusion,
        paper_diagonal=dict(PAPER_TABLE3_DIAGONAL),
        loo_accuracy_percent=result.summary.mean_percent,
    )


def format_table3(result: Table3Result) -> str:
    """Plain-text rendering: the full matrix plus a paper-vs-measured diagonal."""
    lines = [result.confusion.format(decimals=1), ""]
    lines.append(f"{'Species':<8}{'paper diag %':>14}{'measured diag %':>17}")
    measured = result.measured_diagonal()
    for code, paper_value in result.paper_diagonal.items():
        lines.append(f"{code:<8}{paper_value:>14.1f}{measured.get(code, 0.0):>17.1f}")
    lines.append(f"diagonal dominant: {result.diagonal_dominant()}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - thin CLI wrapper
    print(format_table3(build_table3()))


if __name__ == "__main__":  # pragma: no cover
    main()
