"""Figure 4: conversion of a PAA-processed signal to SAX symbols.

The paper's example shows an 18-segment PAA sequence symbolised with a
5-symbol alphabet.  The experiment regenerates that example on a synthetic
signal and verifies the defining SAX property: with Gaussian breakpoints,
symbols are used roughly equiprobably over Gaussian data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..timeseries.normalize import znormalize
from ..timeseries.paa import paa
from ..timeseries.sax import gaussian_breakpoints, symbolize

__all__ = ["Figure4Data", "build_figure4", "main"]


@dataclass
class Figure4Data:
    """The Figure 4 example: signal, PAA segments, SAX word and breakpoints."""

    signal: np.ndarray
    paa_values: np.ndarray
    sax_word: np.ndarray
    breakpoints: np.ndarray
    alphabet: int

    def symbol_histogram(self) -> np.ndarray:
        """Count of each symbol in the SAX word."""
        return np.bincount(self.sax_word, minlength=self.alphabet)

    def summary(self) -> dict:
        return {
            "segments": int(self.paa_values.size),
            "alphabet": self.alphabet,
            "sax_word": [int(s) for s in self.sax_word],
            "breakpoints": [round(float(b), 3) for b in self.breakpoints],
        }


def build_figure4(
    length: int = 512,
    segments: int = 18,
    alphabet: int = 5,
    seed: int = 2007,
) -> Figure4Data:
    """Regenerate the PAA -> SAX example of the paper's Figure 4."""
    rng = np.random.default_rng(seed)
    # A slowly varying signal with noise, similar in character to the figure.
    t = np.linspace(0, 3, length)
    signal = np.sin(2 * np.pi * 0.8 * t) + 0.35 * rng.standard_normal(length)
    normalized = znormalize(signal)
    reduced = paa(normalized, segments)
    word = symbolize(reduced, alphabet)
    return Figure4Data(
        signal=signal,
        paa_values=reduced,
        sax_word=word,
        breakpoints=gaussian_breakpoints(alphabet),
        alphabet=alphabet,
    )


def main() -> None:  # pragma: no cover - thin CLI wrapper
    data = build_figure4()
    for key, value in data.summary().items():
        print(f"{key}: {value}")


if __name__ == "__main__":  # pragma: no cover
    main()
