"""Ablations over the design choices DESIGN.md calls out.

Each ablation sweeps one extraction parameter over a small clip corpus and
reports detection quality (coverage of ground-truth vocalisations, false
alarms and data reduction), so the sensitivity of the method to its knobs —
SAX alphabet size, anomaly window, lag factor, trigger threshold, smoothing
window — is measured rather than asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..config import FAST_EXTRACTION, ExtractionConfig
from ..pipeline import AcousticPipeline
from ..synth.dataset import ClipCorpus, CorpusSpec, build_corpus

__all__ = [
    "AblationPoint",
    "evaluate_config",
    "sweep_alphabet",
    "sweep_window",
    "sweep_lag_factor",
    "sweep_threshold",
    "sweep_smoothing",
    "default_ablation_corpus",
    "main",
]


@dataclass(frozen=True)
class AblationPoint:
    """Detection quality at one parameter setting."""

    parameter: str
    value: float
    coverage: float
    false_alarm_fraction: float
    reduction_percent: float
    ensembles: int

    def as_row(self) -> dict:
        return {
            "parameter": self.parameter,
            "value": self.value,
            "coverage": round(self.coverage, 3),
            "false_alarm_fraction": round(self.false_alarm_fraction, 4),
            "reduction_percent": round(self.reduction_percent, 1),
            "ensembles": self.ensembles,
        }


def default_ablation_corpus(seed: int = 2007) -> ClipCorpus:
    """A small, fixed corpus shared by every ablation sweep."""
    return build_corpus(
        CorpusSpec(clips_per_species=1, songs_per_clip=2, clip_duration=12.0, sample_rate=16000, seed=seed)
    )


def evaluate_config(
    corpus: ClipCorpus, config: ExtractionConfig, parameter: str, value: float
) -> AblationPoint:
    """Extract every clip with ``config`` and score detection quality."""
    pipeline = AcousticPipeline().extract(config, normalization="global").build()
    covered = 0
    truth_total = 0
    false_alarm = 0
    quiet_total = 0
    retained = 0
    total = 0
    ensembles = 0
    for clip in corpus.clips:
        result = pipeline.run(clip)
        truth = np.zeros(clip.samples.size, dtype=bool)
        for voc in clip.vocalizations:
            truth[voc.start : voc.end] = True
        detected = np.zeros_like(truth)
        for ensemble in result.ensembles:
            detected[ensemble.start : ensemble.end] = True
        covered += int((truth & detected).sum())
        truth_total += int(truth.sum())
        false_alarm += int((~truth & detected).sum())
        quiet_total += int((~truth).sum())
        retained += result.retained_samples
        total += result.total_samples
        ensembles += len(result.ensembles)
    return AblationPoint(
        parameter=parameter,
        value=value,
        coverage=covered / truth_total if truth_total else 1.0,
        false_alarm_fraction=false_alarm / quiet_total if quiet_total else 0.0,
        reduction_percent=100.0 * (1.0 - retained / total) if total else 0.0,
        ensembles=ensembles,
    )


def _with_anomaly(config: ExtractionConfig, **kwargs) -> ExtractionConfig:
    return replace(config, anomaly=replace(config.anomaly, **kwargs))


def _with_trigger(config: ExtractionConfig, **kwargs) -> ExtractionConfig:
    return replace(config, trigger=replace(config.trigger, **kwargs))


def sweep_alphabet(
    corpus: ClipCorpus | None = None,
    alphabets: tuple[int, ...] = (4, 6, 8, 12),
    config: ExtractionConfig = FAST_EXTRACTION,
) -> list[AblationPoint]:
    """Sweep the SAX alphabet size (the paper uses 8)."""
    corpus = corpus or default_ablation_corpus()
    return [
        evaluate_config(corpus, _with_anomaly(config, alphabet=a), "alphabet", a) for a in alphabets
    ]


def sweep_window(
    corpus: ClipCorpus | None = None,
    windows: tuple[int, ...] = (50, 100, 200),
    config: ExtractionConfig = FAST_EXTRACTION,
) -> list[AblationPoint]:
    """Sweep the SAX anomaly window size (the paper uses 100 samples)."""
    corpus = corpus or default_ablation_corpus()
    return [
        evaluate_config(corpus, _with_anomaly(config, window=w), "window", w) for w in windows
    ]


def sweep_lag_factor(
    corpus: ClipCorpus | None = None,
    factors: tuple[int, ...] = (1, 5, 20, 40),
    config: ExtractionConfig = FAST_EXTRACTION,
) -> list[AblationPoint]:
    """Sweep the lag-window factor (1 = the paper's equal-window formulation)."""
    corpus = corpus or default_ablation_corpus()
    return [
        evaluate_config(corpus, _with_anomaly(config, lag_factor=f), "lag_factor", f)
        for f in factors
    ]


def sweep_threshold(
    corpus: ClipCorpus | None = None,
    sigmas: tuple[float, ...] = (3.0, 5.0, 8.0),
    config: ExtractionConfig = FAST_EXTRACTION,
) -> list[AblationPoint]:
    """Sweep the trigger threshold in standard deviations (the paper uses 5)."""
    corpus = corpus or default_ablation_corpus()
    return [
        evaluate_config(corpus, _with_trigger(config, threshold_sigmas=s), "threshold_sigmas", s)
        for s in sigmas
    ]


def sweep_smoothing(
    corpus: ClipCorpus | None = None,
    windows: tuple[int, ...] = (512, 2048, 4096),
    config: ExtractionConfig = FAST_EXTRACTION,
) -> list[AblationPoint]:
    """Sweep the moving-average window (the paper uses 2250 samples)."""
    corpus = corpus or default_ablation_corpus()
    return [
        evaluate_config(corpus, _with_anomaly(config, smooth_window=w), "smooth_window", w)
        for w in windows
    ]


def main() -> None:  # pragma: no cover - thin CLI wrapper
    corpus = default_ablation_corpus()
    for sweep in (sweep_alphabet, sweep_window, sweep_lag_factor, sweep_threshold, sweep_smoothing):
        for point in sweep(corpus):
            print(point.as_row())


if __name__ == "__main__":  # pragma: no cover
    main()
