"""Construction of the four experimental data sets.

The paper evaluates MESO on four data sets derived from the same extracted
ensembles: *Pattern* and *Ensemble* (1050 features) and their PAA-reduced
counterparts (105 features).  This module builds the synthetic equivalents:
it generates a clip corpus, runs ensemble extraction, attaches ground-truth
labels (standing in for the paper's human validation step) and converts the
ensembles into :class:`repro.classify.EvaluationItem` lists for the
cross-validation harness.

Scales
------
Three preset scales keep runtimes sensible:

* ``TEST_SCALE`` — a couple of clips per species, used by the unit tests.
* ``BENCH_SCALE`` — the default for the benchmark harness; large enough for
  the paper's qualitative results to be visible, small enough to run in a
  few minutes.
* ``PAPER_SCALE`` — approaches the paper's data volume (hundreds of
  ensembles, thousands of patterns); expect long runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..classify.crossval import EvaluationItem
from ..classify.features import PatternExtractor
from ..config import FAST_EXTRACTION, ExtractionConfig
from ..core.cutter import Ensemble
from ..pipeline import AcousticPipeline
from ..synth.dataset import ClipCorpus, CorpusSpec, build_corpus

__all__ = [
    "ExperimentScale",
    "TEST_SCALE",
    "BENCH_SCALE",
    "PAPER_SCALE",
    "ExperimentData",
    "build_experiment_data",
]


@dataclass(frozen=True)
class ExperimentScale:
    """How much data and how many repetitions an experiment run uses."""

    name: str
    corpus: CorpusSpec
    #: Repeats of the leave-one-out experiment (paper: 20).
    loo_repeats: int = 2
    #: Repeats of the resubstitution experiment (paper: 100).
    resub_repeats: int = 5
    #: Keep at most this many pattern items for the single-pattern data sets
    #: (None = keep all); leave-one-out over thousands of patterns retrains
    #: MESO millions of times, which the paper did in C++ overnight.
    max_pattern_items: int | None = None
    #: Keep at most this many ensemble items (None = keep all).
    max_ensemble_items: int | None = None


TEST_SCALE = ExperimentScale(
    name="test",
    corpus=CorpusSpec(clips_per_species=1, songs_per_clip=2, clip_duration=12.0, sample_rate=16000, seed=2007),
    loo_repeats=1,
    resub_repeats=1,
    max_pattern_items=200,
)

BENCH_SCALE = ExperimentScale(
    name="bench",
    corpus=CorpusSpec(clips_per_species=2, songs_per_clip=2, clip_duration=15.0, sample_rate=16000, seed=2007),
    loo_repeats=2,
    resub_repeats=5,
    max_pattern_items=400,
)

PAPER_SCALE = ExperimentScale(
    name="paper",
    corpus=CorpusSpec(clips_per_species=6, songs_per_clip=3, clip_duration=30.0, sample_rate=16000, seed=2007),
    loo_repeats=20,
    resub_repeats=100,
    max_pattern_items=None,
)


@dataclass
class ExperimentData:
    """Everything the table experiments need, built once and reused.

    ``corpus`` is None when the data was replayed from a feature store
    (``build_experiment_data(from_store=...)``): the raw clips were never
    regenerated because nothing downstream of extraction needs them.
    """

    scale: ExperimentScale
    config: ExtractionConfig
    corpus: ClipCorpus | None
    ensembles: list[Ensemble]
    #: The four data sets keyed as in Table 2.
    pattern_items: list[EvaluationItem] = field(default_factory=list)
    ensemble_items: list[EvaluationItem] = field(default_factory=list)
    paa_pattern_items: list[EvaluationItem] = field(default_factory=list)
    paa_ensemble_items: list[EvaluationItem] = field(default_factory=list)
    #: Data-reduction bookkeeping for the Section 4 claim.
    total_samples: int = 0
    retained_samples: int = 0
    #: Labelled ensembles too short to yield a single pattern (and therefore
    #: absent from every data set above).  Reported so the tables can show
    #: how many validated ensembles the feature pipeline dropped.
    short_ensembles: int = 0

    @property
    def reduction_percent(self) -> float:
        """Percentage of raw samples removed by ensemble extraction."""
        if self.total_samples == 0:
            return 0.0
        return 100.0 * (1.0 - self.retained_samples / self.total_samples)

    def dataset(self, name: str) -> list[EvaluationItem]:
        """Look up one of the four data sets by its Table 2 name."""
        mapping = {
            "Pattern": self.pattern_items,
            "Ensemble": self.ensemble_items,
            "PAA Pattern": self.paa_pattern_items,
            "PAA Ensemble": self.paa_ensemble_items,
        }
        if name not in mapping:
            raise KeyError(f"unknown data set {name!r}; choose from {sorted(mapping)}")
        return mapping[name]

    def species_counts(self) -> dict[str, dict[str, int]]:
        """Per-species ensemble and pattern counts (the content of Table 1)."""
        counts: dict[str, dict[str, int]] = {}
        for item in self.ensemble_items:
            entry = counts.setdefault(item.label, {"ensembles": 0, "patterns": 0})
            entry["ensembles"] += 1
            entry["patterns"] += len(item.patterns)
        return counts


def _subsample(items: list[EvaluationItem], limit: int | None, seed: int) -> list[EvaluationItem]:
    if limit is None or len(items) <= limit:
        return items
    rng = np.random.default_rng(seed)
    keep = rng.choice(len(items), size=limit, replace=False)
    return [items[i] for i in sorted(keep)]


def build_experiment_data(
    scale: ExperimentScale = BENCH_SCALE,
    config: ExtractionConfig = FAST_EXTRACTION,
    hop: int = 16,
    backend: str = "serial",
    workers: int | None = None,
    store=None,
    from_store=None,
    ledger=None,
) -> ExperimentData:
    """Generate the corpus, extract ensembles and build all four data sets.

    ``backend`` / ``workers`` select how the per-clip extraction runs (see
    :meth:`~repro.pipeline.BuiltPipeline.run_corpus`); every backend yields
    bit-identical ensembles, so the tables do not depend on the choice.

    ``store`` persists the validated (labelled) ensembles and the sample
    accounting to a feature store as extraction completes;
    ``from_store`` skips corpus generation and extraction entirely,
    replaying a store written that way — the resulting data sets are
    bit-identical to the extract-from-raw path.

    ``ledger`` makes the extraction durable and resumable (see
    :func:`repro.jobs.run_corpus`): an interrupted table build picks up
    where it stopped instead of re-extracting the whole corpus.  Clips
    the ledger quarantined (failed ``max_attempts`` times) are excluded
    from the data sets — the run degrades instead of aborting.
    """
    if scale.corpus.sample_rate != config.sample_rate:
        config = replace(config, sample_rate=scale.corpus.sample_rate)
    if from_store is not None:
        from ..store.reader import coerce_reader

        reader = coerce_reader(from_store)
        corpus = None
        ensembles = []
        total = 0
        retained = 0
        for name in reader.recordings():
            info = reader.recording_info(name)
            total += info.total_samples
            stored_rows = list(reader.iter_ensembles(recording=name))
            meta = info.meta or {}
            fallback = sum(row.ensemble.samples.size for row in stored_rows)
            retained += int(meta.get("retained_samples", fallback))
            ensembles.extend(row.ensemble for row in stored_rows)
    else:
        corpus = build_corpus(scale.corpus)
        # Global normalisation reproduces the legacy whole-clip batch semantics
        # exactly, keeping the table values identical across API generations.
        # keep_traces=False: only the ensembles and the sample accounting are
        # used here, so per-sample score/trigger traces would be dead weight
        # held for the whole corpus (and pickled back from process workers).
        pipeline = (
            AcousticPipeline()
            .extract(config, hop=hop, normalization="global", keep_traces=False)
            .build()
        )
        results = pipeline.run_corpus(
            corpus.clips, backend=backend, workers=workers, ledger=ledger
        )
        writer = None
        owned = False
        if store is not None:
            from ..store.writer import coerce_writer

            writer, owned = coerce_writer(store)
        ensembles = []
        total = 0
        retained = 0
        try:
            for index, (clip, result) in enumerate(zip(corpus.clips, results)):
                if result is None:  # quarantined by the ledger: excluded
                    continue
                total += result.total_samples
                retained += result.retained_samples
                labelled = result.labelled(clip)
                ensembles.extend(labelled)
                if writer is not None:
                    writer.write_ensembles(
                        f"rec-{index:05d}",
                        labelled,
                        sample_rate=clip.sample_rate,
                        total_samples=result.total_samples,
                        station=clip.station_id,
                        meta={"retained_samples": int(result.retained_samples)},
                    )
        finally:
            if writer is not None:
                writer.close() if owned else writer.flush()

    data = ExperimentData(
        scale=scale,
        config=config,
        corpus=corpus,
        ensembles=ensembles,
        total_samples=total,
        retained_samples=retained,
    )

    for use_paa in (False, True):
        extractor_cfg = PatternExtractor(
            config=config.features, sample_rate=config.sample_rate, use_paa=use_paa
        )
        patterns, groups = extractor_cfg.labelled_patterns(ensembles)
        if not use_paa:
            # Ensembles shorter than one pattern group produce no entry in
            # ``groups``; count them so the tables can report the drop
            # (PAA changes bins per record, never the record grouping).
            data.short_ensembles = len(ensembles) - len(groups)
        ensemble_items = [
            EvaluationItem(
                label=patterns[group[0]].label,
                patterns=tuple(patterns[i].features for i in group),
            )
            for group in groups
        ]
        pattern_items = [
            EvaluationItem(label=p.label, patterns=(p.features,)) for p in patterns
        ]
        ensemble_items = _subsample(ensemble_items, scale.max_ensemble_items, scale.corpus.seed)
        pattern_items = _subsample(pattern_items, scale.max_pattern_items, scale.corpus.seed)
        if use_paa:
            data.paa_ensemble_items = ensemble_items
            data.paa_pattern_items = pattern_items
        else:
            data.ensemble_items = ensemble_items
            data.pattern_items = pattern_items
    return data
