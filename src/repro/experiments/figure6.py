"""Figure 6: the trigger signal and the ensembles extracted from a clip.

The experiment runs the extraction chain on the reference clip of Figure 2
and reports the trigger series, the extracted ensembles and how well they
line up with the ground-truth vocalisations (coverage and false-alarm time),
which is the quantitative counterpart of the paper's visual figure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import FAST_EXTRACTION, ExtractionConfig
from ..pipeline import AcousticPipeline
from ..pipeline.results import PipelineResult
from ..synth.clips import AcousticClip
from .figure2 import reference_clip

__all__ = ["Figure6Data", "build_figure6", "main"]


@dataclass
class Figure6Data:
    """Trigger signal, extracted ensembles and detection quality measures."""

    clip: AcousticClip
    result: PipelineResult

    def _masks(self) -> tuple[np.ndarray, np.ndarray]:
        truth = np.zeros(self.clip.samples.size, dtype=bool)
        for voc in self.clip.vocalizations:
            truth[voc.start : voc.end] = True
        detected = np.zeros_like(truth)
        for ensemble in self.result.ensembles:
            detected[ensemble.start : ensemble.end] = True
        return truth, detected

    def coverage(self) -> float:
        """Fraction of ground-truth vocalisation samples inside some ensemble."""
        truth, detected = self._masks()
        if not truth.any():
            return 1.0
        return float((truth & detected).sum() / truth.sum())

    def false_alarm_fraction(self) -> float:
        """Fraction of non-vocalisation samples inside some ensemble."""
        truth, detected = self._masks()
        quiet = ~truth
        if not quiet.any():
            return 0.0
        return float((quiet & detected).sum() / quiet.sum())

    def summary(self) -> dict:
        return {
            "ensembles": len(self.result.ensembles),
            "ground_truth_vocalizations": len(self.clip.vocalizations),
            "trigger_high_fraction": float(np.mean(self.result.trigger)),
            "coverage": round(self.coverage(), 3),
            "false_alarm_fraction": round(self.false_alarm_fraction(), 4),
            "data_reduction_percent": round(100.0 * self.result.reduction, 1),
        }


def build_figure6(
    clip: AcousticClip | None = None,
    config: ExtractionConfig = FAST_EXTRACTION,
    seed: int = 2007,
) -> Figure6Data:
    """Run extraction on the reference clip and package the Figure 6 series."""
    clip = clip or reference_clip(seed=seed)
    pipeline = AcousticPipeline().extract(config, normalization="global").build()
    return Figure6Data(clip=clip, result=pipeline.run(clip))


def main() -> None:  # pragma: no cover - thin CLI wrapper
    data = build_figure6()
    for key, value in data.summary().items():
        print(f"{key}: {value}")


if __name__ == "__main__":  # pragma: no cover
    main()
