"""The numbers reported in the paper, kept here so every experiment driver
can print "paper vs measured" side by side and EXPERIMENTS.md stays honest.
"""

from __future__ import annotations

__all__ = [
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3_DIAGONAL",
    "PAPER_REDUCTION_PERCENT",
]

#: Table 1 — species code -> (common name, patterns, ensembles).
PAPER_TABLE1: dict[str, tuple[str, int, int]] = {
    "AMGO": ("American goldfinch", 229, 42),
    "BCCH": ("Black capped chickadee", 672, 68),
    "BLJA": ("Blue Jay", 318, 51),
    "DOWO": ("Downy woodpecker", 272, 50),
    "HOFI": ("House finch", 223, 26),
    "MODO": ("Mourning dove", 338, 24),
    "NOCA": ("Northern cardinal", 395, 42),
    "RWBL": ("Red winged blackbird", 211, 27),
    "TUTI": ("Tufted titmouse", 339, 59),
    "WBNU": ("White breasted nuthatch", 676, 84),
}

#: Table 2 — data set -> protocol -> (accuracy %, std %).
PAPER_TABLE2: dict[str, dict[str, tuple[float, float]]] = {
    "Pattern": {"Leave-one-out": (71.5, 0.9), "Resubstitution": (92.3, 3.1)},
    "Ensemble": {"Leave-one-out": (76.0, 1.1), "Resubstitution": (96.3, 2.8)},
    "PAA Pattern": {"Leave-one-out": (80.4, 0.3), "Resubstitution": (94.7, 0.8)},
    "PAA Ensemble": {"Leave-one-out": (82.2, 0.9), "Resubstitution": (97.2, 1.2)},
}

#: Table 2 — training / testing times in seconds reported by the paper
#: (identical for the PAA and non-PAA variants of each data set).
PAPER_TABLE2_TIMES: dict[str, dict[str, float]] = {
    "Pattern": {"Training": 57.7, "Testing": 57.7},
    "Ensemble": {"Training": 56.1, "Testing": 58.6},
    "PAA Pattern": {"Training": 57.7, "Testing": 57.7},
    "PAA Ensemble": {"Training": 56.1, "Testing": 58.6},
}

#: Table 3 — main-diagonal percentages of the confusion matrix
#: (PAA ensembles, leave-one-out).
PAPER_TABLE3_DIAGONAL: dict[str, float] = {
    "AMGO": 70.3,
    "BCCH": 69.2,
    "BLJA": 86.0,
    "DOWO": 90.5,
    "HOFI": 79.3,
    "MODO": 67.0,
    "NOCA": 90.8,
    "RWBL": 94.7,
    "TUTI": 90.5,
    "WBNU": 86.1,
}

#: Section 4 — "Extraction of ensembles from acoustic clips reduced the
#: amount of data that required further processing by 80.6%".
PAPER_REDUCTION_PERCENT: float = 80.6
