"""Figure 2: oscillogram and spectrogram of an acoustic clip.

The figure itself is a plot; the experiment regenerates the underlying
numeric series — the normalised amplitude trace and the spectrogram
magnitude matrix — and reports summary statistics that a plotting script
(or the benchmark assertions) can consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dsp.oscillogram import Oscillogram, oscillogram
from ..dsp.spectrogram import Spectrogram, spectrogram
from ..synth.clips import AcousticClip, ClipBuilder

__all__ = ["Figure2Data", "reference_clip", "build_figure2", "main"]


def reference_clip(seed: int = 2007, sample_rate: int = 16000, duration: float = 15.0) -> AcousticClip:
    """The clip used by Figures 2, 3 and 6 (one cardinal, one chickadee song)."""
    rng = np.random.default_rng(seed)
    builder = ClipBuilder(sample_rate=sample_rate, duration=duration)
    return builder.build(["NOCA", "BCCH"], rng, songs_per_species=1, station_id="figure-clip")


@dataclass
class Figure2Data:
    """The two panels of Figure 2 as numeric series."""

    clip: AcousticClip
    oscillogram: Oscillogram
    spectrogram: Spectrogram

    def summary(self) -> dict:
        """Headline numbers for quick comparison and benchmark assertions."""
        return {
            "duration_seconds": round(self.clip.duration, 2),
            "amplitude_peak": float(np.max(np.abs(self.oscillogram.amplitudes))),
            "amplitude_mean": float(np.mean(self.oscillogram.amplitudes)),
            "spectrogram_shape": tuple(self.spectrogram.shape),
            "max_frequency_hz": float(self.spectrogram.frequencies[-1]),
        }


def build_figure2(
    clip: AcousticClip | None = None, frame_size: int = 512, seed: int = 2007
) -> Figure2Data:
    """Compute the oscillogram and spectrogram of the reference clip."""
    clip = clip or reference_clip(seed=seed)
    osc = oscillogram(clip.samples, clip.sample_rate)
    spec = spectrogram(clip.samples, clip.sample_rate, frame_size=frame_size)
    return Figure2Data(clip=clip, oscillogram=osc, spectrogram=spec)


def main() -> None:  # pragma: no cover - thin CLI wrapper
    data = build_figure2()
    for key, value in data.summary().items():
        print(f"{key}: {value}")


if __name__ == "__main__":  # pragma: no cover
    main()
