"""Table 1: species codes, names, pattern and ensemble counts.

The absolute counts depend on the corpus size (the paper recorded at field
stations over a season; we generate a synthetic corpus), so the comparison
of interest is structural: all ten species are represented, every species
yields multiple ensembles, and each ensemble yields several patterns.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..synth.species import SPECIES
from .datasets import BENCH_SCALE, ExperimentData, ExperimentScale, build_experiment_data
from .paper_values import PAPER_TABLE1

__all__ = ["Table1Row", "build_table1", "format_table1", "main"]


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1: paper counts next to measured counts."""

    code: str
    common_name: str
    paper_patterns: int
    paper_ensembles: int
    measured_patterns: int
    measured_ensembles: int


def build_table1(
    data: ExperimentData | None = None,
    scale: ExperimentScale = BENCH_SCALE,
    store=None,
    from_store=None,
    ledger=None,
) -> list[Table1Row]:
    """Compute the per-species counts for the given experiment data.

    ``store`` / ``from_store`` / ``ledger`` are forwarded to
    :func:`~repro.experiments.datasets.build_experiment_data` (ignored when
    ``data`` is passed in): persist the extracted ensembles, replay them
    from a feature store without re-extracting, or run the extraction
    under a durable, resumable job ledger.
    """
    if data is None:
        data = build_experiment_data(
            scale, store=store, from_store=from_store, ledger=ledger
        )
    counts = data.species_counts()
    rows = []
    for model in SPECIES:
        name, paper_patterns, paper_ensembles = PAPER_TABLE1[model.code]
        measured = counts.get(model.code, {"ensembles": 0, "patterns": 0})
        rows.append(
            Table1Row(
                code=model.code,
                common_name=name,
                paper_patterns=paper_patterns,
                paper_ensembles=paper_ensembles,
                measured_patterns=measured["patterns"],
                measured_ensembles=measured["ensembles"],
            )
        )
    return rows


def format_table1(rows: list[Table1Row], short_ensembles: int | None = None) -> str:
    """Plain-text rendering with paper and measured counts side by side.

    ``short_ensembles`` (see :attr:`ExperimentData.short_ensembles`) adds a
    footnote counting validated ensembles that were too short to yield a
    single pattern and therefore appear in no data set.
    """
    lines = [
        f"{'Code':<6}{'Common name':<26}{'paper pat':>10}{'paper ens':>10}{'our pat':>9}{'our ens':>9}"
    ]
    for row in rows:
        lines.append(
            f"{row.code:<6}{row.common_name:<26}{row.paper_patterns:>10}{row.paper_ensembles:>10}"
            f"{row.measured_patterns:>9}{row.measured_ensembles:>9}"
        )
    total_pat = sum(r.measured_patterns for r in rows)
    total_ens = sum(r.measured_ensembles for r in rows)
    lines.append(f"{'TOTAL':<6}{'':<26}{3673:>10}{473:>10}{total_pat:>9}{total_ens:>9}")
    if short_ensembles is not None:
        lines.append(
            f"(+ {short_ensembles} labelled ensembles too short for a single pattern)"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - thin CLI wrapper
    data = build_experiment_data(BENCH_SCALE)
    print(format_table1(build_table1(data), short_ensembles=data.short_ensembles))


if __name__ == "__main__":  # pragma: no cover
    main()
