"""k-nearest-neighbour classifier baseline.

MESO is, loosely, an approximate nearest-neighbour memory; a 1-NN / k-NN
classifier over the raw training patterns is therefore the natural accuracy
and cost baseline.  The classifier exposes the same ``partial_fit`` /
``predict`` interface as :class:`repro.meso.MesoClassifier`, so it can be
dropped into the same cross-validation harness.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable

import numpy as np

__all__ = ["KnnClassifier"]


class KnnClassifier:
    """Exact k-NN with Euclidean distance over stored training patterns."""

    def __init__(self, k: int = 1) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._patterns: list[np.ndarray] = []
        self._labels: list[Hashable] = []
        self._matrix: np.ndarray | None = None

    @property
    def pattern_count(self) -> int:
        return len(self._patterns)

    def partial_fit(self, pattern: np.ndarray, label: Hashable) -> None:
        """Store one training pattern."""
        self._patterns.append(np.asarray(pattern, dtype=float).ravel())
        self._labels.append(label)
        self._matrix = None

    def fit(self, patterns, labels) -> "KnnClassifier":
        for pattern, label in zip(patterns, labels):
            self.partial_fit(pattern, label)
        return self

    def _ensure_matrix(self) -> np.ndarray:
        if self._matrix is None:
            self._matrix = np.stack(self._patterns)
        return self._matrix

    def predict(self, pattern: np.ndarray) -> Hashable:
        """Majority label among the k nearest stored patterns."""
        if not self._patterns:
            raise ValueError("classifier has not been trained")
        matrix = self._ensure_matrix()
        vector = np.asarray(pattern, dtype=float).ravel()
        diff = matrix - vector[None, :]
        dists = np.einsum("ij,ij->i", diff, diff)
        k = min(self.k, dists.size)
        nearest = np.argpartition(dists, k - 1)[:k]
        votes = Counter(self._labels[i] for i in nearest)
        return max(votes.items(), key=lambda item: (item[1], str(item[0])))[0]

    def reset(self) -> None:
        self._patterns = []
        self._labels = []
        self._matrix = None
