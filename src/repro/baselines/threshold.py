"""Fixed-threshold energy segmentation baseline.

The simplest alternative to SAX-bitmap ensemble extraction is to threshold
the short-time energy of the signal at a fixed multiple of the clip's median
energy.  The extraction benchmarks compare the paper's method against this
baseline on detection quality and on how sensitive each is to its threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.cutter import Ensemble, cut_ensembles

__all__ = ["EnergySegmenter"]


@dataclass
class EnergySegmenter:
    """Segment a signal wherever its smoothed energy exceeds a fixed threshold."""

    #: Window (samples) of the short-time energy estimate.
    window: int = 512
    #: Threshold as a multiple of the clip's median smoothed energy.
    threshold_ratio: float = 4.0
    #: Minimum segment length in samples.
    min_duration: int = 400

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.threshold_ratio <= 0:
            raise ValueError(f"threshold_ratio must be positive, got {self.threshold_ratio}")
        if self.min_duration < 1:
            raise ValueError(f"min_duration must be >= 1, got {self.min_duration}")

    def energy(self, samples: np.ndarray) -> np.ndarray:
        """Smoothed short-time energy (same length as the input)."""
        arr = np.asarray(samples, dtype=float).ravel()
        if arr.size == 0:
            return arr.copy()
        kernel = np.ones(self.window) / self.window
        return np.convolve(arr**2, kernel, mode="same")

    def segment(self, samples: np.ndarray, sample_rate: int) -> list[Ensemble]:
        """Extract energy-based segments analogous to ensembles."""
        arr = np.asarray(samples, dtype=float).ravel()
        if arr.size == 0:
            return []
        energy = self.energy(arr)
        threshold = self.threshold_ratio * np.median(energy)
        trigger = (energy > threshold).astype(np.int8)
        return cut_ensembles(arr, trigger, sample_rate, min_duration=self.min_duration)
