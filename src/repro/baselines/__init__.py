"""Baselines from related work: energy segmentation and k-NN classification."""

from .knn import KnnClassifier
from .threshold import EnergySegmenter

__all__ = ["EnergySegmenter", "KnnClassifier"]
